"""Segmented write-ahead logging of the flow-update stream.

Durability here leans entirely on the paper's stream semantics: the
sketch is a deterministic, order-invariant, delete-impervious function
of the update multiset (Section 3), so a durable *suffix* of the stream
plus a checkpoint of the synopsis state at the suffix's start
reconstructs the exact sketch — bit-identical, not approximately.

The log is a directory of append-only segment files.  Each record
frames one appended batch:

``RW | length (4B LE) | crc32 (4B LE) | payload``

where the payload is compact ASCII JSON ``[first_seq, [[source, dest,
delta], ...]]``.  Every update carries an implicit monotone sequence
number (its position in the log); checkpoint manifests reference these
sequence numbers, and recovery replays everything at or beyond the
checkpoint's ``wal_count``.

Crash behaviour:

* a **torn tail** (process died mid-write) is expected: replay stops at
  the first bad record of the *final* segment, and the next writer
  truncates the tail back to the last good byte before appending;
* corruption anywhere *before* the final segment is not a crash
  artifact and raises :class:`WalCorruption`.

Flushing is batched (``flush_every`` updates per ``flush()``); fsync is
policy-driven (``"always"`` / ``"batch"`` / ``"never"``) because the
durability-vs-throughput trade-off is an operator decision — see
``docs/recovery.md``.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import ParameterError
from ..obs.catalog import WAL_RECORDS
from ..obs.recorder import current_recorder
from ..obs.registry import Registry, registry_or_null
from ..obs.trace import span as trace_span
from ..types import FlowUpdate

#: Two-byte magic prefix of every WAL record.
RECORD_MAGIC = b"RW"

#: Bytes of framing before the payload: magic + length + crc32.
HEADER_BYTES = 10

#: Valid ``fsync_policy`` values.
FSYNC_POLICIES = ("always", "batch", "never")

#: Segment file name pattern: first sequence number, zero-padded.
SEGMENT_PATTERN = "wal-{:020d}.seg"


class WalCorruption(RuntimeError):
    """A WAL record failed its frame or CRC check before the log tail."""


def _encode_record(first_seq: int, updates: Sequence[FlowUpdate]) -> bytes:
    """Frame one batch of updates as a WAL record."""
    payload = json.dumps(
        [first_seq, [[u.source, u.dest, u.delta] for u in updates]],
        separators=(",", ":"),
    ).encode("ascii")
    header = (
        RECORD_MAGIC
        + len(payload).to_bytes(4, "little")
        + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "little")
    )
    return header + payload


def _decode_records(
    data: bytes,
) -> Tuple[List[Tuple[int, List[FlowUpdate]]], int, bool]:
    """Parse a segment's bytes.

    Returns ``(records, good_bytes, torn)`` where ``records`` is a list
    of ``(first_seq, updates)`` batches, ``good_bytes`` is the offset of
    the first undecodable byte, and ``torn`` reports whether trailing
    bytes were left undecoded.
    """
    records: List[Tuple[int, List[FlowUpdate]]] = []
    offset = 0
    size = len(data)
    while offset < size:
        if size - offset < HEADER_BYTES:
            return records, offset, True
        if data[offset:offset + 2] != RECORD_MAGIC:
            return records, offset, True
        length = int.from_bytes(data[offset + 2:offset + 6], "little")
        crc = int.from_bytes(data[offset + 6:offset + 10], "little")
        start = offset + HEADER_BYTES
        end = start + length
        if end > size:
            return records, offset, True
        payload = data[start:end]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            return records, offset, True
        try:
            first_seq, triples = json.loads(payload.decode("ascii"))
            batch = [
                FlowUpdate(source, dest, delta)
                for source, dest, delta in triples
            ]
        except (ValueError, TypeError) as error:
            raise WalCorruption(
                f"CRC-valid record with malformed payload: {error}"
            ) from error
        records.append((int(first_seq), batch))
        offset = end
    return records, offset, False


def _segment_paths(directory: Path) -> List[Path]:
    """All segment files in the directory, in sequence order."""
    return sorted(directory.glob("wal-*.seg"))


def replay_wal(
    directory: Path, start_seq: int = 0
) -> Iterator[Tuple[int, FlowUpdate]]:
    """Yield ``(seq, update)`` for every logged update with
    ``seq >= start_seq``.

    Tolerates a torn tail in the final segment (replay simply stops
    there); a bad record in any earlier segment raises
    :class:`WalCorruption`, because a non-tail hole would silently
    desynchronise the recovered sketch from the stream.
    """
    paths = _segment_paths(Path(directory))
    for position, path in enumerate(paths):
        records, good_bytes, torn = _decode_records(path.read_bytes())
        if torn and position != len(paths) - 1:
            raise WalCorruption(
                f"{path.name}: undecodable record at byte {good_bytes} "
                "before the log tail"
            )
        for first_seq, batch in records:
            for index, update in enumerate(batch):
                seq = first_seq + index
                if seq >= start_seq:
                    yield seq, update


class WriteAheadLog:
    """Append-only, segmented log of flow updates.

    Args:
        directory: segment directory (created if absent).
        segment_bytes: rotate to a fresh segment once the current one
            reaches this size.
        flush_every: buffered updates that trigger an automatic
            :meth:`flush` (1 flushes every append).
        fsync_policy: ``"always"`` fsyncs on every flush (strongest
            durability, slowest), ``"batch"`` fsyncs only on
            :meth:`sync` / rotation / :meth:`close` (the default:
            crash-consistent, may lose the OS-buffered tail on power
            loss), ``"never"`` leaves fsync to the OS entirely.
        obs: optional :class:`~repro.obs.Registry`; appended updates
            count under ``repro_wal_records_total``.

    Reopening an existing directory repairs any torn tail (truncating
    the final segment to its last good record) and continues the
    sequence numbering where the log left off.
    """

    def __init__(
        self,
        directory: Path,
        *,
        segment_bytes: int = 1 << 20,
        flush_every: int = 64,
        fsync_policy: str = "batch",
        obs: Optional[Registry] = None,
    ) -> None:
        if segment_bytes < HEADER_BYTES + 2:
            raise ParameterError(
                f"segment_bytes must be >= {HEADER_BYTES + 2}, "
                f"got {segment_bytes}"
            )
        if flush_every < 1:
            raise ParameterError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        if fsync_policy not in FSYNC_POLICIES:
            raise ParameterError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, "
                f"got {fsync_policy!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.flush_every = flush_every
        self.fsync_policy = fsync_policy
        self.obs: Registry = registry_or_null(obs)
        self._obs_records = self.obs.counter_from(WAL_RECORDS)
        self._next_seq = self._repair_and_scan()
        self._pending: List[bytes] = []
        self._pending_updates = 0
        self._segment_path: Optional[Path] = None
        self._segment_size = 0
        self._closed = False

    def _repair_and_scan(self) -> int:
        """Truncate any torn tail; return the next sequence number."""
        next_seq = 0
        paths = _segment_paths(self.directory)
        for position, path in enumerate(paths):
            data = path.read_bytes()
            records, good_bytes, torn = _decode_records(data)
            if torn:
                if position != len(paths) - 1:
                    raise WalCorruption(
                        f"{path.name}: undecodable record at byte "
                        f"{good_bytes} before the log tail"
                    )
                current_recorder().record(
                    "wal_repair",
                    segment=path.name,
                    truncated_to=good_bytes,
                    dropped_bytes=len(data) - good_bytes,
                )
                with path.open("r+b") as handle:
                    handle.truncate(good_bytes)
            for first_seq, batch in records:
                next_seq = max(next_seq, first_seq + len(batch))
        return next_seq

    # -- appending ---------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended update will receive."""
        return self._next_seq

    def append(self, update: FlowUpdate) -> int:
        """Append one update; returns its sequence number."""
        return self.append_batch([update])

    def append_batch(self, updates: Iterable[FlowUpdate]) -> int:
        """Append a batch as one record; returns the first sequence
        number (``next_seq`` unchanged when the batch is empty)."""
        if self._closed:
            raise ParameterError("write-ahead log is closed")
        batch = list(updates)
        first_seq = self._next_seq
        if not batch:
            return first_seq
        with trace_span("wal.append"):
            self._pending.append(_encode_record(first_seq, batch))
            self._pending_updates += len(batch)
            self._next_seq += len(batch)
            self._obs_records.inc(len(batch))
            if self._pending_updates >= self.flush_every:
                self.flush()
        return first_seq

    def flush(self, sync: Optional[bool] = None) -> None:
        """Write buffered records to the current segment.

        ``sync`` forces (or suppresses) an fsync regardless of the
        configured policy; ``None`` follows the policy.
        """
        if not self._pending:
            if sync:
                self.sync()
            return
        data = b"".join(self._pending)
        first_unwritten = self._next_seq - self._pending_updates
        self._pending = []
        self._pending_updates = 0
        if self._segment_path is None:
            self._segment_path = self.directory / SEGMENT_PATTERN.format(
                first_unwritten
            )
            self._segment_size = 0
        path = self._segment_path
        with path.open("ab") as handle:
            handle.write(data)
            do_sync = (
                sync if sync is not None else self.fsync_policy == "always"
            )
            if do_sync:
                with trace_span("wal.fsync"):
                    handle.flush()
                    os.fsync(handle.fileno())
        self._segment_size += len(data)
        if self._segment_size >= self.segment_bytes:
            self._rotate()

    def sync(self) -> None:
        """Flush buffered records and fsync the current segment."""
        if self._pending:
            self.flush(sync=True)
            return
        if self._segment_path is not None and self._segment_path.exists():
            with self._segment_path.open("ab") as handle:
                with trace_span("wal.fsync"):
                    handle.flush()
                    os.fsync(handle.fileno())

    def _rotate(self) -> None:
        """Seal the current segment (fsync unless ``never``) and start
        a new one on the next flush."""
        if self._segment_path is not None and self.fsync_policy != "never":
            with self._segment_path.open("ab") as handle:
                with trace_span("wal.fsync"):
                    handle.flush()
                    os.fsync(handle.fileno())
        self._segment_path = None
        self._segment_size = 0

    # -- reading and pruning -----------------------------------------------------

    def replay(self, start_seq: int = 0) -> Iterator[Tuple[int, FlowUpdate]]:
        """Yield ``(seq, update)`` for logged updates with
        ``seq >= start_seq`` (buffered records are flushed first)."""
        self.flush()
        return replay_wal(self.directory, start_seq)

    def prune(self, upto_seq: int) -> int:
        """Delete segments whose every record precedes ``upto_seq``.

        The active (final) segment is never deleted.  Returns the
        number of segments removed.
        """
        self.flush()
        paths = _segment_paths(self.directory)
        removed = 0
        # A segment's records end where the next segment begins.
        for path, successor in zip(paths, paths[1:]):
            boundary = int(successor.stem.split("-")[1])
            if boundary <= upto_seq and path != self._segment_path:
                path.unlink()
                removed += 1
        return removed

    def segment_count(self) -> int:
        """Number of segment files currently on disk."""
        return len(_segment_paths(self.directory))

    def close(self) -> None:
        """Flush (and, unless ``fsync_policy="never"``, fsync) and
        refuse further appends; idempotent."""
        if self._closed:
            return
        self.flush(sync=self.fsync_policy != "never")
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(next_seq={self._next_seq}, "
            f"segments={self.segment_count()}, "
            f"fsync={self.fsync_policy!r})"
        )
