"""Supervised sharded ingestion: respawn, restore, degrade.

A ``backend="process"`` :class:`~repro.sketch.sharded.ShardedSketch`
loses a shard's entire synopsis if its worker dies mid-stream.  The
supervisor closes that hole with three cooperating mechanisms:

* a single **global WAL** of the routed stream — routing is a
  deterministic function of ``(seq, update)`` (round-robin is
  ``seq % shards``; by-destination is a stateless hash), so any
  shard's sub-stream can be re-derived from the log alone;
* **per-shard checkpoints** (labels ``shard-0`` … ``shard-N-1``) taken
  from worker snapshots, each manifest recording the global WAL
  position it is aligned to;
* a **respawn loop** with capped exponential backoff: a dead worker is
  replaced, restored from its newest good checkpoint, and fed the
  replayed WAL tail routed to it — bit-identical recovery by the
  Section 3 linearity/delete-imperviousness argument.  After
  ``max_restarts`` consecutive failures on a shard the supervisor
  stops fighting the platform and **degrades to the sync backend**,
  rebuilding every shard in-process from snapshot-or-checkpoint+tail.

Because all durable state lives in the directory, constructing a
supervisor over a *fresh* sharded sketch and an existing directory
recovers the whole deployment — that is what ``repro-ddos recover``
does after a monitor host restart.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Union

from ..exceptions import ParameterError
from ..obs.catalog import WAL_RECORDS_REPLAYED, WORKER_RESTARTS
from ..obs.recorder import current_recorder
from ..obs.registry import Registry, registry_or_null
from ..obs.trace import span as trace_span
from ..sketch import serialize
from ..sketch.estimate import TopKResult
from ..sketch.process_pool import PoolUnavailable, WorkerDied
from ..sketch.sharded import ShardedSketch
from ..sketch.tracking import TrackingDistinctCountSketch
from ..types import FlowUpdate
from .checkpoint import CheckpointInfo, CheckpointStore
from .durable import CHECKPOINT_SUBDIR, REPLAY_BATCH, WAL_SUBDIR
from .wal import WriteAheadLog


def _shard_label(index: int) -> str:
    """Checkpoint label of one shard."""
    return f"shard-{index}"


class ShardSupervisor:
    """Crash-safe wrapper around a :class:`ShardedSketch`.

    Args:
        sharded: the sketch bank to supervise.  Pass it *freshly
            constructed*: when ``directory`` already holds state, the
            constructor restores every shard from checkpoint + WAL
            tail before accepting new updates.
        directory: durability directory (``checkpoints/`` + ``wal/``).
        checkpoint_every: automatic checkpoint cadence in updates
            (0 disables; call :meth:`checkpoint` manually or align it
            with epoch rotation — see ``docs/recovery.md``).
        max_restarts: consecutive respawn failures on one shard before
            degrading to the sync backend.
        backoff_base / backoff_cap: capped exponential backoff (in
            seconds) between respawn attempts:
            ``min(cap, base * 2**(attempt-1))``.
        keep_checkpoints: checkpoint generations retained per shard.
        wal_segment_bytes / wal_flush_every / fsync_policy: forwarded
            to :class:`~repro.resilience.wal.WriteAheadLog`.
        obs: optional :class:`~repro.obs.Registry` — respawns count
            under ``repro_worker_restarts_total{shard=...}``, replays
            under ``repro_wal_records_replayed_total``.
        sleep: injectable sleep (tests pass a no-op).
    """

    def __init__(
        self,
        sharded: ShardedSketch,
        directory: Union[str, Path],
        *,
        checkpoint_every: int = 0,
        max_restarts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        keep_checkpoints: int = 2,
        wal_segment_bytes: int = 1 << 20,
        wal_flush_every: int = 64,
        fsync_policy: str = "batch",
        obs: Optional[Registry] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if checkpoint_every < 0:
            raise ParameterError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if max_restarts < 1:
            raise ParameterError(
                f"max_restarts must be >= 1, got {max_restarts}"
            )
        self.sharded = sharded
        self.directory = Path(directory)
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self.obs: Registry = registry_or_null(obs)
        self.checkpoints = CheckpointStore(
            self.directory / CHECKPOINT_SUBDIR,
            keep=keep_checkpoints,
            obs=obs,
        )
        self.wal = WriteAheadLog(
            self.directory / WAL_SUBDIR,
            segment_bytes=wal_segment_bytes,
            flush_every=wal_flush_every,
            fsync_policy=fsync_policy,
            obs=obs,
        )
        shards = sharded.num_shards
        #: Updates routed to each shard since WAL sequence 0.
        self._routed = [0] * shards
        self._failures = [0] * shards
        self._restart_count = 0
        self._since_checkpoint = 0
        self._closed = False
        restarts = self.obs.counter_from(WORKER_RESTARTS)
        self._obs_restarts = [
            restarts.labels(shard=str(index)) for index in range(shards)
        ]
        self._obs_replayed = self.obs.counter_from(WAL_RECORDS_REPLAYED)
        if self.wal.next_seq > 0 or any(
            self.checkpoints.manifests(_shard_label(index))
            for index in range(shards)
        ):
            try:
                self._recover_all()
            except (OSError, RuntimeError, ValueError):
                # Construction failed after the WAL opened: nobody else
                # holds a reference, so close it here or the segment
                # handle (and its buffered tail) outlives the wreck.
                self.wal.close()
                raise

    # -- routing -----------------------------------------------------------------

    def _route(self, seq: int, update: FlowUpdate) -> int:
        """Shard of the update with global sequence number ``seq``.

        Deterministic in ``(seq, update)`` so replay re-derives the
        exact original partition: round-robin is position modulo
        shards; by-destination is the sharded sketch's stateless route
        hash.
        """
        if self.sharded.policy == "round-robin":
            return seq % self.sharded.num_shards
        return self.sharded.shard_for(update)

    # -- ingestion ---------------------------------------------------------------

    def process(self, update: FlowUpdate) -> None:
        """Log and route one update."""
        self.update_batch([update])

    def update_batch(self, updates: Iterable[FlowUpdate]) -> int:
        """Log a batch as one WAL record, then route it shard-by-shard.

        A shard whose worker turns out to be dead is recovered inline
        (respawn + checkpoint restore + WAL-tail replay, which includes
        this very batch — already logged); ingestion then continues.
        Returns the number of updates ingested.
        """
        if self._closed:
            raise ParameterError("supervisor is closed")
        batch = list(updates)
        if not batch:
            return 0
        first = self.wal.append_batch(batch)
        groups: List[List[FlowUpdate]] = [
            [] for _ in range(self.sharded.num_shards)
        ]
        for offset, update in enumerate(batch):
            groups[self._route(first + offset, update)].append(update)
        for index, group in enumerate(groups):
            if not group:
                continue
            self._routed[index] += len(group)
            self._send(index, group)
        self._since_checkpoint += len(batch)
        if (
            self.checkpoint_every
            and self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return len(batch)

    def process_stream(
        self,
        updates: Iterable[FlowUpdate],
        batch_size: int = 1024,
    ) -> int:
        """Ingest a whole stream in WAL-record-sized chunks."""
        if batch_size < 1:
            raise ParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        total = 0
        batch: List[FlowUpdate] = []
        for update in updates:
            batch.append(update)
            if len(batch) >= batch_size:
                total += self.update_batch(batch)
                batch.clear()
        if batch:
            total += self.update_batch(batch)
        return total

    def _send(self, index: int, group: List[FlowUpdate]) -> None:
        """Feed one shard, detecting and recovering a dead worker."""
        try:
            self.sharded.ingest_shard(index, group)
            alive = self.sharded.worker_alive(index)
        except WorkerDied:
            alive = False
        if alive:
            self._failures[index] = 0
        else:
            # The group is already logged; recovery replays it.
            self._recover_shard(index)

    # -- recovery ----------------------------------------------------------------

    def _load_shard_checkpoint(
        self, index: int
    ) -> "tuple[Optional[bytes], int, int]":
        """Newest good checkpoint of a shard: (payload, wal_count,
        routed tally); zeros when none exists."""
        loaded = self.checkpoints.load_latest_payload(_shard_label(index))
        if loaded is None:
            return None, 0, 0
        payload, info = loaded
        return payload, info.wal_count, info.extra.get("routed", 0)

    def _replay_shard(self, index: int, start_seq: int) -> int:
        """Re-apply the WAL tail routed to one shard; returns count.

        Raises:
            WorkerDied: when the freshly-respawned worker dies again
                mid-replay (the caller retries with backoff).
        """
        replayed = 0
        batch: List[FlowUpdate] = []
        with trace_span("recovery.replay"):
            for seq, update in self.wal.replay(start_seq):
                if self._route(seq, update) != index:
                    continue
                batch.append(update)
                if len(batch) >= REPLAY_BATCH:
                    self.sharded.ingest_shard(index, batch)
                    replayed += len(batch)
                    batch.clear()
            if batch:
                self.sharded.ingest_shard(index, batch)
                replayed += len(batch)
        if replayed:
            self._obs_replayed.inc(replayed)
        return replayed

    def _recover_shard(self, index: int) -> None:
        """Respawn + restore + replay one shard, with capped backoff.

        Exhausting ``max_restarts`` consecutive attempts degrades the
        whole bank to the sync backend instead of failing ingestion.
        """
        self.wal.flush()
        # Post-mortem first: the dump captures the event ring and span
        # buffer as they stood when the death was detected, before the
        # respawn loop overwrites the picture.
        recorder = current_recorder()
        recorder.record("worker_died", shard=index)
        recorder.dump(
            recorder.next_dump_path(self.directory / "blackbox"),
            reason="worker-died",
        )
        while True:
            self._failures[index] += 1
            if self._failures[index] > self.max_restarts:
                self._degrade_to_sync()
                return
            delay = min(
                self.backoff_cap,
                self.backoff_base * (2 ** (self._failures[index] - 1)),
            )
            if delay > 0:
                self._sleep(delay)
            self._restart_count += 1
            self._obs_restarts[index].inc()
            recorder.record(
                "worker_respawn",
                shard=index,
                attempt=self._failures[index],
            )
            payload, start, routed = self._load_shard_checkpoint(index)
            try:
                self.sharded.restore_shard(
                    index, payload, processed_count=routed
                )
                self._routed[index] = routed
                self._routed[index] += self._replay_shard(index, start)
                if self.sharded.worker_alive(index):
                    self._failures[index] = 0
                    return
            except (WorkerDied, PoolUnavailable):
                continue

    def _recover_all(self) -> None:
        """Restore every shard from its checkpoint + WAL tail (used
        when the supervisor itself restarts over existing state)."""
        for index in range(self.sharded.num_shards):
            payload, start, routed = self._load_shard_checkpoint(index)
            try:
                self.sharded.restore_shard(
                    index, payload, processed_count=routed
                )
                self._routed[index] = routed
                self._routed[index] += self._replay_shard(index, start)
            except (WorkerDied, PoolUnavailable):
                self._recover_shard(index)

    def _degrade_to_sync(self) -> None:
        """Rebuild every shard in-process and abandon the worker pool."""
        current_recorder().record(
            "degrade_to_sync", shards=self.sharded.num_shards
        )
        self.wal.flush()
        shards = self.sharded.num_shards
        payloads: List[Optional[bytes]] = []
        starts: List[int] = []
        routeds: List[int] = []
        for index in range(shards):
            payload: Optional[bytes] = None
            start = 0
            routed = 0
            if self.sharded.backend == "process" and (
                self.sharded.worker_alive(index)
            ):
                try:
                    payload = serialize.dumps(self.sharded.shard(index))
                    start = self.wal.next_seq
                    routed = self._routed[index]
                except WorkerDied:
                    payload = None
            if payload is None:
                payload, start, routed = self._load_shard_checkpoint(
                    index
                )
            payloads.append(payload)
            starts.append(start)
            routeds.append(routed)
        self.sharded.degrade_to_sync(payloads, routeds)
        for index in range(shards):
            self._routed[index] = routeds[index]
            self._routed[index] += self._replay_shard(
                index, starts[index]
            )
            self._failures[index] = 0

    # -- durability --------------------------------------------------------------

    def checkpoint(self) -> List[CheckpointInfo]:
        """Checkpoint every shard against one WAL position.

        The WAL is fsynced first; each worker snapshot is taken after
        all its pending ingest (FIFO pipe), so every manifest's
        ``wal_count`` is exact.  Covered WAL segments are pruned.
        """
        self.wal.sync()
        wal_count = self.wal.next_seq
        infos: List[CheckpointInfo] = []
        for index in range(self.sharded.num_shards):
            payload = self._snapshot_shard(index)
            infos.append(
                self.checkpoints.save_payload(
                    payload,
                    wal_count=wal_count,
                    label=_shard_label(index),
                    extra={"routed": self._routed[index]},
                )
            )
        oldest = [
            manifests[0].wal_count
            for manifests in (
                self.checkpoints.manifests(_shard_label(index))
                for index in range(self.sharded.num_shards)
            )
            if manifests
        ]
        if oldest:
            self.wal.prune(min(oldest))
        self._since_checkpoint = 0
        return infos

    def _snapshot_shard(self, index: int) -> bytes:
        """Serialized current state of one shard, recovering it first
        when its worker is found dead."""
        for _ in range(2):
            try:
                return serialize.dumps(self.sharded.shard(index))
            except WorkerDied:
                self._recover_shard(index)
        # After recovery (possibly degraded to sync) this cannot fail.
        return serialize.dumps(self.sharded.shard(index))

    # -- queries and lifecycle ---------------------------------------------------

    def combined(self) -> TrackingDistinctCountSketch:
        """The merged global sketch (see :meth:`ShardedSketch.combined`),
        recovering any dead worker before merging."""
        if self.sharded.backend == "process":
            for index in range(self.sharded.num_shards):
                if not self.sharded.worker_alive(index):
                    self._recover_shard(index)
        try:
            return self.sharded.combined()
        except WorkerDied as error:
            self._recover_shard(error.shard)
            return self.sharded.combined()

    def track_topk(self, k: int) -> TopKResult:
        """Global top-k over the supervised bank."""
        return self.combined().track_topk(k)

    @property
    def backend(self) -> str:
        """The supervised sketch's resolved backend (may have degraded
        from ``"process"`` to ``"sync"``)."""
        return self.sharded.backend

    @property
    def restarts(self) -> int:
        """Total respawn attempts since construction."""
        return self._restart_count

    def routed_counts(self) -> List[int]:
        """Updates routed per shard (supervisor's authoritative view)."""
        return list(self._routed)

    def close(self) -> None:
        """Flush and close the WAL and shut down workers; idempotent.
        No final checkpoint — reopening replays the WAL tail."""
        if self._closed:
            return
        self._closed = True
        self.wal.close()
        self.sharded.close()

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardSupervisor(shards={self.sharded.num_shards}, "
            f"backend={self.backend!r}, wal_seq={self.wal.next_seq})"
        )
