"""Atomic, CRC-checked checkpoints of sketch state.

A checkpoint is the serialized synopsis (:mod:`repro.sketch.serialize`
wire format — backend-agnostic, so a packed-arena sketch restores as
packed via the ``backend=`` load kwarg) written with the classic
crash-safe dance:

1. payload → ``<name>.tmp``, flushed and fsynced;
2. ``os.replace`` onto the final ``.ckpt`` name (atomic on POSIX);
3. a small JSON **manifest** recording the payload's byte size and
   CRC-32 alongside the ``wal_count`` it is aligned to, written with
   the same tmp-then-rename dance.

Readers trust only the manifest: a checkpoint whose payload is missing,
truncated, or CRC-mismatched is skipped and the previous one is used —
recovery then simply replays a longer WAL tail.  ``keep`` retains that
many generations per label for exactly this fallback.

This module is the one place in :mod:`repro.resilience` allowed to read
the wall clock (reprolint RL003): checkpoint durations are operator
telemetry about the I/O boundary, not algorithmic state.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..exceptions import ParameterError
from ..obs.catalog import CHECKPOINT_BYTES, CHECKPOINT_DURATION
from ..obs.registry import Registry, registry_or_null
from ..obs.trace import span as trace_span
from ..sketch import serialize

#: Manifest format version written into every manifest.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class CheckpointInfo:
    """One checkpoint generation, as described by its manifest.

    Attributes:
        label: logical stream the checkpoint belongs to (one label per
            sketch; a sharded deployment uses one label per shard).
        wal_count: the checkpoint reflects exactly the WAL updates with
            ``seq < wal_count`` (routed to this label's sketch).
        nbytes: payload size in bytes.
        crc32: CRC-32 of the payload.
        extra: caller-supplied integers carried through the manifest
            (e.g. the supervisor's per-shard routed-update tally).
    """

    label: str
    wal_count: int
    nbytes: int
    crc32: int
    extra: Dict[str, int]


def _fsync_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically and durably.

    Protocol: write to a temp file, flush, fsync the file, rename over
    the target, then fsync the parent directory — the rename itself is
    not durable until the directory entry is synced, so omitting the
    last step can lose a "committed" checkpoint on power failure.
    """
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(str(path.parent), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class CheckpointStore:
    """A directory of checkpoint generations, newest-wins with fallback.

    Args:
        directory: checkpoint directory (created if absent).
        keep: generations to retain per label (older ones are deleted
            on :meth:`save`); at least 1.
        obs: optional :class:`~repro.obs.Registry` —
            ``repro_checkpoint_duration_us`` and
            ``repro_checkpoint_bytes`` are observed per save.
    """

    def __init__(
        self,
        directory: Path,
        *,
        keep: int = 2,
        obs: Optional[Registry] = None,
    ) -> None:
        if keep < 1:
            raise ParameterError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.obs: Registry = registry_or_null(obs)
        self._obs_duration = self.obs.histogram_from(CHECKPOINT_DURATION)
        self._obs_bytes = self.obs.histogram_from(CHECKPOINT_BYTES)

    # -- naming -------------------------------------------------------------------

    def _data_path(self, label: str, wal_count: int) -> Path:
        return self.directory / f"{label}-{wal_count:020d}.ckpt"

    def _manifest_path(self, label: str, wal_count: int) -> Path:
        return self.directory / f"{label}-{wal_count:020d}.json"

    # -- writing ------------------------------------------------------------------

    def save(
        self,
        sketch: serialize.AnySketch,
        *,
        wal_count: int,
        label: str = "sketch",
        extra: Optional[Dict[str, int]] = None,
    ) -> CheckpointInfo:
        """Checkpoint a sketch; see :meth:`save_payload`."""
        return self.save_payload(
            serialize.dumps(sketch),
            wal_count=wal_count,
            label=label,
            extra=extra,
        )

    def save_payload(
        self,
        payload: bytes,
        *,
        wal_count: int,
        label: str = "sketch",
        extra: Optional[Dict[str, int]] = None,
    ) -> CheckpointInfo:
        """Write one checkpoint generation atomically.

        The payload lands first (tmp + fsync + rename), the manifest
        second — a crash between the two leaves a payload without a
        manifest, which readers ignore.  Older generations beyond
        ``keep`` are pruned afterwards.
        """
        if wal_count < 0:
            raise ParameterError(
                f"wal_count must be >= 0, got {wal_count}"
            )
        started = time.perf_counter_ns()
        info = CheckpointInfo(
            label=label,
            wal_count=wal_count,
            nbytes=len(payload),
            crc32=zlib.crc32(payload) & 0xFFFFFFFF,
            extra=dict(extra or {}),
        )
        with trace_span("checkpoint.write"):
            _fsync_write(self._data_path(label, wal_count), payload)
            manifest = {
                "manifest_version": MANIFEST_VERSION,
                "label": info.label,
                "wal_count": info.wal_count,
                "bytes": info.nbytes,
                "crc32": info.crc32,
                "extra": info.extra,
            }
            _fsync_write(
                self._manifest_path(label, wal_count),
                json.dumps(manifest, separators=(",", ":")).encode("ascii"),
            )
            self._prune(label)
        elapsed_us = (time.perf_counter_ns() - started) // 1000
        self._obs_duration.observe(elapsed_us)
        self._obs_bytes.observe(info.nbytes)
        return info

    def _prune(self, label: str) -> None:
        """Drop generations beyond ``keep`` (manifest first, then data)."""
        manifests = self.manifests(label)
        for info in manifests[: max(0, len(manifests) - self.keep)]:
            self._manifest_path(label, info.wal_count).unlink(
                missing_ok=True
            )
            self._data_path(label, info.wal_count).unlink(missing_ok=True)

    # -- reading ------------------------------------------------------------------

    def manifests(self, label: str = "sketch") -> List[CheckpointInfo]:
        """Parseable manifests for a label, oldest first."""
        infos: List[CheckpointInfo] = []
        for path in sorted(self.directory.glob(f"{label}-*.json")):
            try:
                raw = json.loads(path.read_text(encoding="ascii"))
                if raw.get("manifest_version") != MANIFEST_VERSION:
                    continue
                if raw.get("label") != label:
                    continue
                infos.append(
                    CheckpointInfo(
                        label=label,
                        wal_count=int(raw["wal_count"]),
                        nbytes=int(raw["bytes"]),
                        crc32=int(raw["crc32"]),
                        extra={
                            str(k): int(v)
                            for k, v in dict(raw.get("extra") or {}).items()
                        },
                    )
                )
            except (ValueError, KeyError, TypeError, OSError):
                # An unreadable manifest disqualifies its generation
                # only; recovery falls back to an older one.
                continue
        infos.sort(key=lambda info: info.wal_count)
        return infos

    def load_latest_payload(
        self, label: str = "sketch"
    ) -> Optional[Tuple[bytes, CheckpointInfo]]:
        """The newest checkpoint whose payload passes size+CRC checks.

        Walks generations newest-first; a missing, truncated, or
        corrupted payload is skipped.  Returns ``None`` when no good
        generation exists (recovery then replays the WAL from zero).
        """
        for info in reversed(self.manifests(label)):
            path = self._data_path(label, info.wal_count)
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            if len(payload) != info.nbytes:
                continue
            if (zlib.crc32(payload) & 0xFFFFFFFF) != info.crc32:
                continue
            return payload, info
        return None

    def load_latest(
        self, label: str = "sketch", *, backend: str = "reference"
    ) -> Optional[Tuple[serialize.AnySketch, CheckpointInfo]]:
        """Deserialize the newest good checkpoint for a label.

        ``backend`` selects the storage backend of the restored sketch
        (``"packed"`` restores a packed-arena sketch as packed).
        """
        loaded = self.load_latest_payload(label)
        if loaded is None:
            return None
        payload, info = loaded
        return serialize.loads(payload, backend=backend), info

    def __repr__(self) -> str:
        return (
            f"CheckpointStore({str(self.directory)!r}, keep={self.keep})"
        )
