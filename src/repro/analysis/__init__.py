"""Executable versions of the paper's analysis (Sections 4-5).

The paper's guarantees rest on a handful of probabilistic facts; this
package turns them into checkable, plannable code:

* :mod:`repro.analysis.bounds` — Chernoff-bound helpers and the
  level-occupancy / singleton-recovery probabilities behind
  Lemmas 4.1-4.3.
* :mod:`repro.analysis.planner` — capacity planning: given a target
  workload (U, f_vk) and accuracy (epsilon, delta), derive sketch
  shapes and predicted space/time, both theory-faithful (Theorem 4.4)
  and empirically calibrated.
* :mod:`repro.analysis.validate` — empirical validators that measure a
  live sketch against the lemmas' predictions (used by tests and the
  ablation benchmarks).
"""

from .bounds import (
    chernoff_bound,
    estimate_standard_error,
    expected_level_population,
    recovery_probability,
    singleton_probability,
    stopping_level,
)
from .planner import CapacityPlan, plan_capacity
from .prediction import (
    appearance_probability,
    predicted_recall_curve,
    predicted_recall_upper_bound,
    zipf_frequencies,
)
from .validate import (
    measure_level_populations,
    measure_recovery_rate,
    validate_stopping_level,
)

__all__ = [
    "CapacityPlan",
    "appearance_probability",
    "chernoff_bound",
    "estimate_standard_error",
    "expected_level_population",
    "measure_level_populations",
    "measure_recovery_rate",
    "plan_capacity",
    "predicted_recall_curve",
    "predicted_recall_upper_bound",
    "recovery_probability",
    "singleton_probability",
    "stopping_level",
    "validate_stopping_level",
    "zipf_frequencies",
]
