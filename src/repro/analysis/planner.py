"""Capacity planning: from workload targets to sketch shapes.

Given what an operator knows — the expected number of distinct active
pairs ``U``, the smallest frequency they care about ``f_vk``, the
stream-length bound ``n``, and the accuracy targets ``(epsilon,
delta)`` — produce:

* the **theory-faithful** shape from Theorem 4.4 (huge but guaranteed);
* the **calibrated** shape: the smallest ``s`` whose predicted relative
  standard error (from :func:`~repro.analysis.bounds.
  estimate_standard_error`) meets ``epsilon``, with the paper's
  practical ``r``;

plus predicted space and per-update cost for each, so the trade-off is
explicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ParameterError
from ..sketch.params import SketchParams
from ..types import AddressDomain
from .bounds import estimate_standard_error


@dataclass(frozen=True)
class CapacityPlan:
    """One recommended sketch configuration with predictions.

    Attributes:
        params: the recommended sketch shape.
        predicted_space_bytes: model space at the expected workload.
        predicted_relative_error: predicted standard error for a
            frequency of ``f_vk`` at the expected sample size.
        flavor: "theorem-4.4" or "calibrated".
    """

    params: SketchParams
    predicted_space_bytes: int
    predicted_relative_error: float
    flavor: str


def _active_levels(distinct_pairs: int) -> int:
    return max(1, round(math.log2(max(distinct_pairs, 2))))


def plan_capacity(
    domain: AddressDomain,
    distinct_pairs: int,
    kth_frequency: int,
    epsilon: float = 0.25,
    delta: float = 0.05,
    stream_length: int = 0,
    flavor: str = "calibrated",
) -> CapacityPlan:
    """Recommend a sketch shape for a target workload and accuracy.

    Args:
        domain: address domain.
        distinct_pairs: expected ``U``.
        kth_frequency: smallest distinct-source frequency that must be
            estimated within ``epsilon`` (the paper's ``f_vk``).
        epsilon: target relative error (< 1/3).
        delta: failure probability (theorem flavor only).
        stream_length: bound on updates ``n`` (defaults to
            ``10 * distinct_pairs``).
        flavor: ``"calibrated"`` (default) or ``"theorem-4.4"``.
    """
    if distinct_pairs < 1:
        raise ParameterError("distinct_pairs must be >= 1")
    if kth_frequency < 1:
        raise ParameterError("kth_frequency must be >= 1")
    if kth_frequency > distinct_pairs:
        raise ParameterError(
            "kth_frequency cannot exceed distinct_pairs"
        )
    n = stream_length or 10 * distinct_pairs

    if flavor == "theorem-4.4":
        params = SketchParams.from_guarantees(
            domain,
            epsilon=epsilon,
            delta=delta,
            stream_length=n,
            distinct_pairs=distinct_pairs,
            kth_frequency=kth_frequency,
        )
    elif flavor == "calibrated":
        # Smallest power-of-two s whose predicted standard error for a
        # frequency of f_vk meets epsilon, given the walk targets ~s
        # sample pairs (the library's calibrated default).
        s = 32
        while s < 2 ** 22:
            error = estimate_standard_error(
                kth_frequency, distinct_pairs, sample_target=float(s)
            )
            if error <= epsilon:
                break
            s *= 2
        params = SketchParams(domain, r=3, s=s)
    else:
        raise ParameterError(
            f"flavor must be 'calibrated' or 'theorem-4.4', got {flavor!r}"
        )

    space = params.allocated_bytes(
        active_levels=_active_levels(distinct_pairs)
    )
    predicted_error = estimate_standard_error(
        kth_frequency,
        distinct_pairs,
        sample_target=params.sample_target(min(epsilon, 0.33)),
    )
    return CapacityPlan(
        params=params,
        predicted_space_bytes=space,
        predicted_relative_error=predicted_error,
        flavor=flavor,
    )
