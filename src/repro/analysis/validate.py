"""Empirical validators: measure a live sketch against the lemmas.

Used by tests and the ablation benchmarks to confirm that the
implementation's randomness behaves as the analysis assumes:

* :func:`measure_level_populations` — per-level distinct-pair counts of
  a sketch vs the geometric expectation ``U / 2^(l+1)``;
* :func:`measure_recovery_rate` — the fraction of a level's pairs that
  ``GetdSample`` actually recovers vs the analytic
  :func:`~repro.analysis.bounds.recovery_probability`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sketch.dcs import DistinctCountSketch
from .bounds import recovery_probability


def measure_level_populations(
    sketch: DistinctCountSketch, pairs: List[int]
) -> Dict[int, int]:
    """Count how many of ``pairs`` (encoded) map to each first level.

    Uses the sketch's own level hash, so the measurement reflects the
    exact randomness the estimator sees.
    """
    populations: Dict[int, int] = {}
    level_hash = sketch._level_hash
    for pair in pairs:
        level = level_hash(pair)
        populations[level] = populations.get(level, 0) + 1
    return populations


def validate_stopping_level(
    sketch: DistinctCountSketch,
    distinct_pairs: int,
    epsilon: float = 0.25,
) -> Tuple[int, int, int]:
    """Compare the observed Figure 3 stopping level with the ideal one.

    Returns ``(observed, ideal, sample_size)`` where ``observed`` is
    the level at which the sketch's walk actually stopped, ``ideal``
    the collision-free prediction from
    :func:`~repro.analysis.bounds.stopping_level`, and ``sample_size``
    the recovered distinct-sample size.  Lemma 4.2 says the two levels
    agree to within a couple of positions whenever recovery is healthy.
    """
    from .bounds import stopping_level

    sample, observed, _ = sketch.collect_distinct_sample(epsilon)
    ideal = stopping_level(
        distinct_pairs, sketch.params.sample_target(epsilon)
    )
    return observed, ideal, len(sample)


def measure_recovery_rate(
    sketch: DistinctCountSketch, pairs: List[int]
) -> List[Tuple[int, int, int, float]]:
    """Per-level (population, recovered, predicted) recovery report.

    Returns a list of ``(level, population, recovered,
    predicted_recovery_probability)`` rows for every populated level,
    comparing what ``GetdSample`` recovers against the analytic
    prediction for that level's population.
    """
    populations = measure_level_populations(sketch, pairs)
    report: List[Tuple[int, int, int, float]] = []
    for level in sorted(populations):
        population = populations[level]
        recovered = len(sketch.get_dsample(level))
        predicted = recovery_probability(
            population, sketch.params.s, sketch.params.r
        )
        report.append((level, population, recovered, predicted))
    return report
