"""Predicting the Figure 8 curves from first principles.

The recall the sketch achieves is not magic: a destination with true
frequency ``f`` appears in a distinct sample of (expected) size ``S``
drawn from ``U`` pairs with probability ``1 - (1 - S/U)^f``.  Summing
that over the true top-k destinations of a Zipf(z) workload yields a
closed-form *upper bound* on expected recall@k — upper bound because
appearing in the sample is necessary but not sufficient (the
destination must also out-rank the noise).

These predictions let the test suite check the measured Figure 8 curves
against theory and let operators anticipate accuracy without running a
workload.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import ParameterError


def zipf_frequencies(
    distinct_pairs: int, destinations: int, skew: float
) -> List[int]:
    """The per-rank distinct-source counts of the Section 6.1 workload.

    Mirrors :class:`~repro.streams.zipf.ZipfWorkload`'s allocation
    (share proportional to ``rank^-z``, floored at one source), without
    materializing any addresses.
    """
    if distinct_pairs < 1 or destinations < 1:
        raise ParameterError("pairs and destinations must be >= 1")
    if destinations > distinct_pairs:
        raise ParameterError("destinations cannot exceed pairs")
    weights = [
        (rank + 1) ** -skew for rank in range(destinations)
    ]
    total_weight = sum(weights)
    counts = [
        max(1, int(weight / total_weight * distinct_pairs))
        for weight in weights
    ]
    return counts


def appearance_probability(
    frequency: int, distinct_pairs: int, sample_size: float
) -> float:
    """Probability a frequency-``f`` destination enters the sample.

    Each of the destination's ``f`` distinct pairs independently lands
    in the sample with probability ``~ S/U``.
    """
    if frequency < 0 or distinct_pairs < 1:
        raise ParameterError("invalid frequency or pair count")
    if sample_size <= 0:
        return 0.0
    probability = min(1.0, sample_size / distinct_pairs)
    return 1.0 - (1.0 - probability) ** frequency


def predicted_recall_upper_bound(
    distinct_pairs: int,
    destinations: int,
    skew: float,
    sample_size: float,
    k: int,
) -> float:
    """Expected recall@k upper bound for a Zipf workload.

    The mean, over the true top-k ranks, of each rank's probability of
    appearing in the distinct sample at all.  Measured recall can only
    be lower (the destination must also win the within-sample ranking).
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    counts = zipf_frequencies(distinct_pairs, destinations, skew)
    top = sorted(counts, reverse=True)[:k]
    if not top:
        return 1.0
    return sum(
        appearance_probability(frequency, distinct_pairs, sample_size)
        for frequency in top
    ) / len(top)


def predicted_recall_curve(
    distinct_pairs: int,
    destinations: int,
    skew: float,
    sample_size: float,
    k_values: List[int],
) -> Dict[int, float]:
    """The full Figure 8(a) upper-bound curve for one skew."""
    return {
        k: predicted_recall_upper_bound(
            distinct_pairs, destinations, skew, sample_size, k
        )
        for k in k_values
    }
