"""Probabilistic bounds underlying the paper's Lemmas 4.1-4.3.

These are small, exact formulas — no simulation — used by the planner
and by empirical validators:

* a pair lands at first-level bucket ``l`` with probability
  ``2^-(l+1)``, so the population of levels ``>= b`` has expectation
  ``U / 2^b`` (the quantity ``u_b`` of the analysis);
* within one second-level table of ``s`` buckets holding ``n`` distinct
  pairs, a given pair is a singleton with probability
  ``(1 - 1/s)^(n-1)``;
* with ``r`` independent tables, the pair is recovered unless it
  collides in all of them.
"""

from __future__ import annotations

import math

from ..exceptions import ParameterError


def chernoff_bound(expectation: float, epsilon: float) -> float:
    """Two-sided Chernoff bound ``Pr[|X - mu| > eps*mu]`` (Section 4).

    Uses the paper's form ``2 exp(-eps^2 mu / 2)`` — the bound applied
    in the derivation of equation (1).
    """
    if expectation < 0:
        raise ParameterError("expectation must be >= 0")
    if epsilon <= 0:
        raise ParameterError("epsilon must be > 0")
    return min(1.0, 2.0 * math.exp(-(epsilon ** 2) * expectation / 2.0))


def expected_level_population(distinct_pairs: int, level: int) -> float:
    """``E[u_level]``: expected pairs at first-level buckets >= level."""
    if distinct_pairs < 0:
        raise ParameterError("distinct_pairs must be >= 0")
    if level < 0:
        raise ParameterError("level must be >= 0")
    return distinct_pairs / (2.0 ** level)


def singleton_probability(population: int, buckets: int) -> float:
    """Probability a given pair is alone in its bucket of one table.

    With ``population`` distinct pairs thrown uniformly into
    ``buckets`` buckets, a fixed pair shares its bucket with nobody
    with probability ``(1 - 1/s)^(population-1)``.
    """
    if buckets < 1:
        raise ParameterError("buckets must be >= 1")
    if population < 1:
        raise ParameterError("population must be >= 1")
    return (1.0 - 1.0 / buckets) ** (population - 1)


def recovery_probability(
    population: int, buckets: int, tables: int
) -> float:
    """Probability a pair is recovered from at least one of r tables.

    This is the engine of Lemma 4.1: at ``population <= s/2`` the
    per-table singleton probability exceeds ~0.6, so over
    ``r = Theta(log(n/delta))`` tables recovery fails with probability
    at most ``delta/n``.
    """
    if tables < 1:
        raise ParameterError("tables must be >= 1")
    miss = 1.0 - singleton_probability(population, buckets)
    return 1.0 - miss ** tables


def expected_recovered(
    population: int, buckets: int, tables: int
) -> float:
    """Expected number of pairs recovered at one level."""
    if population == 0:
        return 0.0
    return population * recovery_probability(population, buckets, tables)


def stopping_level(distinct_pairs: int, target: float) -> int:
    """The level ``b`` where the cumulative sample ~reaches the target.

    Solves ``U / 2^b >= target`` for the largest such ``b`` — the
    idealized (collision-free) stopping level of the Figure 3 walk.
    """
    if distinct_pairs < 1:
        raise ParameterError("distinct_pairs must be >= 1")
    if target <= 0:
        raise ParameterError("target must be > 0")
    if distinct_pairs < target:
        return 0
    return int(math.floor(math.log2(distinct_pairs / target)))


def estimate_standard_error(
    frequency: int, distinct_pairs: int, sample_target: float
) -> float:
    """Predicted relative standard error of one frequency estimate.

    At the stopping level the sampling probability is
    ``p ~ sample_target / U``, so ``f^s ~ Binomial(f, p)`` and the
    relative standard error of ``f_hat = f^s / p`` is
    ``sqrt((1-p) / (f p))``.
    """
    if frequency < 1:
        raise ParameterError("frequency must be >= 1")
    if distinct_pairs < 1:
        raise ParameterError("distinct_pairs must be >= 1")
    if sample_target <= 0:
        raise ParameterError("sample_target must be > 0")
    probability = min(1.0, sample_target / distinct_pairs)
    if probability >= 1.0:
        return 0.0
    return math.sqrt(
        (1.0 - probability) / (frequency * probability)
    )
