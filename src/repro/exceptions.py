"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A structure was configured with invalid or inconsistent parameters.

    Raised, for example, when a sketch is asked for a domain size that is
    not a power of two, or when ``epsilon``/``delta`` fall outside the
    ranges required by the paper's analysis (Theorem 4.4 requires
    ``epsilon < 1/3``).
    """


class DomainError(ReproError, ValueError):
    """An address or address pair falls outside the configured domain."""


class StreamError(ReproError):
    """A flow-update stream violated the protocol.

    Examples: an update with a delta other than +1/-1, or a deletion of a
    pair whose net count would go negative in a structure that forbids it.
    """


class EstimationError(ReproError):
    """An estimator could not produce an answer.

    Raised by ``BaseTopk``/``TrackTopk`` when the distinct sample cannot
    reach its target size (for instance, on an empty sketch with strict
    mode enabled).
    """


class MergeError(ReproError):
    """Two sketches could not be merged.

    Sketches are only mergeable when they share identical parameters and
    hash seeds; anything else raises this error rather than silently
    producing garbage.
    """
