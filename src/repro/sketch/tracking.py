"""The Tracking Distinct-Count Sketch and TrackTopk (Section 5).

A Tracking-DCS augments the basic sketch with, per first-level bucket
``b`` (Figure 5):

1. ``singletons(b)`` — the current set of pairs that are a singleton in
   at least one of the level's ``r`` inner tables, each with a count of
   how many tables it is a singleton in (:class:`SingletonSet`);
2. ``numSingletons(b)`` — the size of that set; and
3. ``topDestHeap(b)`` — a max-heap over destinations keyed by their
   occurrence frequency in the distinct sample drawn from levels
   ``>= b`` (:class:`~repro.sketch.heap.IndexedMaxHeap`).

``UpdateTracking`` (Figure 6) maintains all three alongside every
count-signature update in ``O(r log^2 m)`` worst-case time;
``TrackTopk`` (Figure 7) then answers a top-k query in ``O(k log m)`` by
walking ``numSingletons`` counters to find the stopping level and popping
the level's heap ``k`` times.

The paper's Figure 6 details only the insertion case and notes the
deletion case is "completely symmetric"; we implement both through a
single state-diff: for each inner bucket touched, compare the bucket's
singleton occupant *before* and *after* the counter update and emit
add/remove singleton events for any change.  This uniform rule covers
every transition the paper lists — empty -> singleton,
singleton -> non-singleton, non-singleton -> singleton,
singleton -> empty — plus the no-op transitions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple, Union, cast

from .._accel import np as _np
from ..exceptions import ParameterError
from ..obs.catalog import (
    TRACKING_HEAP_OPS,
    TRACKING_SAMPLE_PAIRS,
    TRACKING_SINGLETON_EVENTS,
)
from ..obs.registry import Registry
from ..types import AddressDomain
from .arena import SignatureArena
from .dcs import DEFAULT_EPSILON, DistinctCountSketch
from .estimate import TopKResult, build_result
from .heap import IndexedMaxHeap
from .params import SketchParams
from .signature import CountSignature


class SingletonSet:
    """The ``singletons(b)`` structure of Figure 5.

    Maps each pair that is currently a singleton in at least one inner
    table of the level to the number of tables where it is one.  The
    interface mirrors the paper's: ``getCount``, ``incrCount``,
    ``decrCount``; all O(1) expected.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def get_count(self, pair: int) -> int:
        """Tables in which ``pair`` is currently a singleton (0 if none)."""
        return self._counts.get(pair, 0)

    def incr_count(self, pair: int) -> int:
        """Increment ``pair``'s count, inserting at 1; returns new count."""
        new_count = self._counts.get(pair, 0) + 1
        self._counts[pair] = new_count
        return new_count

    def decr_count(self, pair: int) -> int:
        """Decrement ``pair``'s count, deleting at 0; returns new count."""
        count = self._counts.get(pair)
        if count is None:
            raise ParameterError(
                f"pair {pair} not present in singleton set"
            )
        count -= 1
        if count == 0:
            del self._counts[pair]
        else:
            self._counts[pair] = count
        return count

    def pairs(self) -> Set[int]:
        """The set of distinct singleton pairs (the level's sample)."""
        return set(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, pair: int) -> bool:
        return pair in self._counts

    def __repr__(self) -> str:
        return f"SingletonSet(size={len(self._counts)})"


class TrackingDistinctCountSketch(DistinctCountSketch):
    """Distinct-Count Sketch with incrementally-maintained sample state.

    Supports the same maintenance interface as
    :class:`DistinctCountSketch` (``insert``/``delete``/``update``/
    ``process``) and adds :meth:`track_topk` — a continuous-tracking
    query with ``O(k log m)`` cost.

    Example:
        >>> from repro.types import AddressDomain
        >>> sketch = TrackingDistinctCountSketch(AddressDomain(2 ** 16), seed=7)
        >>> for source in range(80):
        ...     sketch.insert(source, dest=4)
        >>> sketch.track_topk(1).destinations[0]
        4
    """

    def __init__(
        self,
        params: Union[SketchParams, AddressDomain],
        *,
        r: int = 3,
        s: int = 128,
        seed: int = 0,
        obs: Optional[Registry] = None,
        backend: str = "reference",
    ) -> None:
        super().__init__(
            params, r=r, s=s, seed=seed, obs=obs, backend=backend
        )
        levels = self.params.num_levels
        #: singletons(b) for every first-level bucket b.
        self._singletons: List[SingletonSet] = [
            SingletonSet() for _ in range(levels)
        ]
        #: numSingletons(b) counters.
        self._num_singletons: List[int] = [0] * levels
        #: topDestHeap(b): destination -> frequency in sample from levels >= b.
        self._dest_heaps: List[IndexedMaxHeap[int]] = [
            IndexedMaxHeap() for _ in range(levels)
        ]
        # Tracking instruments; rebuilds (merge/copy) count as events too.
        events = self.obs.counter_from(TRACKING_SINGLETON_EVENTS)
        self._obs_sample_add = events.labels(event="add")
        self._obs_sample_remove = events.labels(event="remove")
        heap_ops = self.obs.counter_from(TRACKING_HEAP_OPS)
        self._obs_heap_add = heap_ops.labels(op="add")
        self._obs_heap_remove = heap_ops.labels(op="remove")
        self.obs.gauge_from(TRACKING_SAMPLE_PAIRS).watch(
            lambda: sum(self._num_singletons)
        )

    # -- maintenance (Figure 6) ------------------------------------------------

    def _apply_pair(self, pair: int, delta: int) -> None:
        """UpdateTracking: signature update plus sample-state maintenance."""
        level = self._level_hash(pair)
        arenas = self._arenas
        if arenas is not None:
            arena_row = arenas[level]
            for j, inner_hash in enumerate(self._inner_hashes):
                bucket = inner_hash(pair)
                store = arena_row[j]
                before = store.singleton_at(bucket)
                store.update(bucket, pair, delta)
                after = store.singleton_at(bucket)
                if before == after:
                    continue
                if before is not None:
                    self._remove_singleton_occurrence(level, before)
                if after is not None:
                    self._add_singleton_occurrence(level, after)
            return
        tables = self._tables[level]
        pair_bits = self.params.pair_bits
        for j, inner_hash in enumerate(self._inner_hashes):
            bucket = inner_hash(pair)
            table = tables[j]
            signature = table.get(bucket)
            before = (
                None if signature is None else signature.recover_singleton()
            )
            if signature is None:
                signature = CountSignature(pair_bits)
                table[bucket] = signature
            signature.update(pair, delta)
            if signature.is_zero:
                del table[bucket]
                after = None
            else:
                after = signature.recover_singleton()
            if before == after:
                continue
            # The bucket's singleton occupant changed: emit sample events.
            if before is not None:
                self._remove_singleton_occurrence(level, before)
            if after is not None:
                self._add_singleton_occurrence(level, after)

    def _scatter_into_store(
        self,
        level: int,
        store: SignatureArena,
        slots: Any,
        contrib: Any,
        touched: Any,
    ) -> None:  # hot-path
        """Batch UpdateTracking: diff singleton state around the scatter.

        The tracked structures are a pure function of the counter state
        (:meth:`check_invariants` is exactly that statement), so diffing
        each touched bucket's singleton occupant before and after the
        whole-group scatter yields the same final state as replaying the
        group update by update.  Both images come from the vectorized
        slab-decode kernel as raw ``(ok, codes)`` arrays, and the diff
        itself is a numpy comparison — Python only touches the buckets
        whose occupant actually changed.
        """
        before_ok, before_codes = store.decode_slots_raw(touched)
        super()._scatter_into_store(level, store, slots, contrib, touched)
        after_ok, after_codes = store.decode_slots_raw(touched)
        changed = (before_ok != after_ok) | (
            before_ok & after_ok & (before_codes != after_codes)
        )
        if not bool(changed.any()):
            return
        remove = self._remove_singleton_occurrence
        add = self._add_singleton_occurrence
        before_ok_list = before_ok.tolist()
        after_ok_list = after_ok.tolist()
        before_code_list = before_codes.tolist()
        after_code_list = after_codes.tolist()
        for index in _np.nonzero(changed)[0].tolist():
            if before_ok_list[index]:
                remove(level, before_code_list[index])
            if after_ok_list[index]:
                add(level, after_code_list[index])

    def _add_singleton_occurrence(self, level: int, pair: int) -> None:
        """A bucket at ``level`` became a singleton holding ``pair``."""
        if self._singletons[level].incr_count(pair) == 1:
            # New distinct pair in the level's sample (Fig 6, steps 18-22).
            self._num_singletons[level] += 1
            dest = self.domain.decode_pair(pair)[1]
            for l in range(level, -1, -1):
                self._dest_heaps[l].add_to(dest, 1, remove_at_zero=True)
            self._obs_sample_add.inc()
            self._obs_heap_add.inc(level + 1)

    def _remove_singleton_occurrence(self, level: int, pair: int) -> None:
        """A bucket at ``level`` stopped being a singleton of ``pair``."""
        if self._singletons[level].decr_count(pair) == 0:
            # Pair left the level's sample (Fig 6, steps 8-12).
            self._num_singletons[level] -= 1
            dest = self.domain.decode_pair(pair)[1]
            for l in range(level, -1, -1):
                self._dest_heaps[l].add_to(dest, -1, remove_at_zero=True)
            self._obs_sample_remove.inc()
            self._obs_heap_remove.inc(level + 1)

    # -- tracked-state accessors -------------------------------------------------

    def num_singletons(self, level: int) -> int:
        """The ``numSingletons(b)`` counter for ``level``."""
        return self._num_singletons[level]

    def singleton_pairs(self, level: int) -> Set[int]:
        """The tracked distinct sample contributed by ``level``."""
        return self._singletons[level].pairs()

    def heap_frequency(self, level: int, dest: int) -> int:
        """Tracked sample frequency of ``dest`` at ``level`` (0 if absent)."""
        heap = self._dest_heaps[level]
        return heap.priority(dest) if dest in heap else 0

    # -- estimation (Figure 7) -----------------------------------------------------

    def track_topk(
        self, k: int, epsilon: float = DEFAULT_EPSILON
    ) -> TopKResult:
        """TrackTopk: the O(k log m) continuous-tracking query.

        Walks ``numSingletons`` counters top-down to locate the sample
        inference level, then pops the level's destination heap ``k``
        times (re-inserting afterwards, so the synopsis is unchanged).
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self._obs_queries.labels(kind="track_topk").inc()
        target = self.params.sample_target(epsilon)
        sample_size = 0
        stop_level = 0
        for level in range(self.params.num_levels - 1, -1, -1):
            sample_size += self._num_singletons[level]
            stop_level = level
            if sample_size >= target:
                break
        self._obs_sample_size.observe(sample_size)
        ranked = [
            (dest, freq)
            for dest, freq in self._dest_heaps[stop_level].top_k(k)
            if freq > 0
        ]
        return build_result(
            ranked=ranked,
            stop_level=stop_level,
            sample_size=sample_size,
            target_size=target,
        )

    def track_threshold(
        self, tau: int, epsilon: float = DEFAULT_EPSILON
    ) -> TopKResult:
        """All destinations with tracked estimate ``>= tau``.

        The footnote-3 threshold variant, answered from tracked state:
        repeatedly pops the stopping level's heap while estimates clear
        the threshold. Cost ``O(a log m)`` for ``a`` reported answers.
        """
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        self._obs_queries.labels(kind="track_threshold").inc()
        target = self.params.sample_target(epsilon)
        sample_size = 0
        stop_level = 0
        for level in range(self.params.num_levels - 1, -1, -1):
            sample_size += self._num_singletons[level]
            stop_level = level
            if sample_size >= target:
                break
        self._obs_sample_size.observe(sample_size)
        scale = 1 << stop_level
        heap = self._dest_heaps[stop_level]
        popped: List[Tuple[int, int]] = []
        while heap:
            dest, freq = heap.pop()
            if scale * freq < tau:
                heap.insert(dest, freq)
                break
            popped.append((dest, freq))
        for dest, freq in popped:
            heap.insert(dest, freq)
        return build_result(
            ranked=popped,
            stop_level=stop_level,
            sample_size=sample_size,
            target_size=target,
        )

    # -- consistency checking ---------------------------------------------------

    def check_invariants(self) -> None:
        """Verify tracked state against a from-scratch recomputation.

        Asserts that, for every level ``b``:

        * ``singletons(b)`` equals the set ``GetdSample`` would recover;
        * ``numSingletons(b)`` equals its size; and
        * ``topDestHeap(b)`` holds exactly the destination frequencies of
          the union of singleton sets from levels ``>= b``.

        Used heavily by the test suite; O(sketch size), not for hot paths.
        """
        cumulative: Dict[int, int] = {}
        for level in range(self.params.num_levels - 1, -1, -1):
            expected_sample = self.get_dsample(level)
            tracked_sample = self._singletons[level].pairs()
            if expected_sample != tracked_sample:
                raise AssertionError(
                    f"level {level}: tracked singletons diverge from scan"
                )
            if self._num_singletons[level] != len(expected_sample):
                raise AssertionError(
                    f"level {level}: numSingletons counter is stale"
                )
            for pair in expected_sample:
                dest = self.domain.decode_pair(pair)[1]
                cumulative[dest] = cumulative.get(dest, 0) + 1
            heap_state = dict(self._dest_heaps[level].items())
            expected_heap = {
                dest: freq for dest, freq in cumulative.items() if freq > 0
            }
            if heap_state != expected_heap:
                raise AssertionError(
                    f"level {level}: topDestHeap diverges from sample"
                )
            self._dest_heaps[level].check_invariants()

    # -- merging ------------------------------------------------------------------

    # linear: merge must stay an exact integer addition (RL013)
    def merge(self, other: DistinctCountSketch) -> None:
        """Merge another sketch's stream into this one.

        Implemented by replaying the structural merge and then rebuilding
        the tracked sample state, since singleton-ness is not additive
        (two singletons can merge into a collision).
        """
        super().merge(other)
        self._rebuild_tracking_state()

    # linear: subtract must stay an exact integer subtraction (RL013)
    def subtract(self, other: DistinctCountSketch) -> None:
        """Remove another sketch's stream from this one.

        Implemented by replaying the structural subtraction and then
        rebuilding the tracked sample state, since singleton-ness is
        not subtractive (removing one stream from a collision can leave
        a singleton behind).
        """
        super().subtract(other)
        self._rebuild_tracking_state()

    def _rebuild_tracking_state(self) -> None:
        """Recompute singletons/counters/heaps from the raw signatures.

        Decodes slab-at-a-time (:meth:`decoded_slab`), so a post-merge
        or post-copy rebuild rides the same vectorized kernel as the
        query path; the resulting state is a pure function of the
        counter state, so decode order is immaterial.
        """
        levels = self.params.num_levels
        self._singletons = [SingletonSet() for _ in range(levels)]
        self._num_singletons = [0] * levels
        self._dest_heaps = [
            IndexedMaxHeap() for _ in range(levels)
        ]
        for level in range(levels):
            for j in range(self.params.r):
                codes, _ = self.decoded_slab(level, j)
                for pair in codes:
                    self._add_singleton_occurrence(level, pair)

    def copy(self) -> "TrackingDistinctCountSketch":
        """Deep copy, including tracked state (rebuilt from signatures)."""
        clone = TrackingDistinctCountSketch(
            self.params, seed=self.seed, backend=self.backend
        )
        for level in range(self.params.num_levels):
            for j in range(self.params.r):
                store = self._tables[level][j]
                if isinstance(store, SignatureArena):
                    clone._tables[level][j] = store.copy()
                else:
                    clone._tables[level][j] = {
                        bucket: signature.copy()
                        for bucket, signature in store.items()
                    }
        if clone._arenas is not None:
            clone._arenas = [
                [cast(SignatureArena, store) for store in level_tables]
                for level_tables in clone._tables
            ]
        clone.updates_processed = self.updates_processed
        clone.net_total = self.net_total
        clone._rebuild_tracking_state()
        return clone

    def __repr__(self) -> str:
        return (
            f"TrackingDistinctCountSketch(m={self.domain.m}, "
            f"r={self.params.r}, s={self.params.s}, "
            f"levels={self.params.num_levels}, "
            f"updates={self.updates_processed})"
        )
