"""Result objects returned by the top-k estimators.

Both ``BaseTopk`` (Section 4) and ``TrackTopk`` (Section 5) return, for
each reported destination, an estimated distinct-source frequency of
``2^b * f_v^s`` where ``b`` is the stopping level of the distinct-sample
walk and ``f_v^s`` the destination's occurrence count in the sample.
:class:`TopKResult` carries those entries plus the diagnostic context
(stopping level, sample size) that the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TopKEntry:
    """One reported destination.

    Attributes:
        dest: the destination address.
        estimate: estimated distinct-source frequency ``2^b * f^s``.
        sample_frequency: raw occurrence count ``f^s`` in the distinct
            sample (before scaling).
    """

    dest: int
    estimate: int
    sample_frequency: int


@dataclass(frozen=True)
class TopKResult:
    """An approximate top-k answer.

    Attributes:
        entries: reported destinations, highest estimate first.
        stop_level: the first-level bucket index ``b`` at which the
            distinct-sample walk stopped; estimates are scaled by
            ``2 ** stop_level``.
        sample_size: number of distinct pairs in the recovered sample.
        target_size: the sample-size target ``(1 + eps) * s / 16`` the
            walk aimed for.
    """

    entries: Tuple[TopKEntry, ...]
    stop_level: int
    sample_size: int
    target_size: float

    @property
    def destinations(self) -> List[int]:
        """Reported destination addresses, best first."""
        return [entry.dest for entry in self.entries]

    @property
    def scale(self) -> int:
        """The sampling-rate inverse ``2 ** stop_level``."""
        return 1 << self.stop_level

    def estimate_for(self, dest: int) -> Optional[int]:
        """The estimate for ``dest``, or ``None`` if it was not reported."""
        for entry in self.entries:
            if entry.dest == dest:
                return entry.estimate
        return None

    def as_dict(self) -> Dict[int, int]:
        """``{dest: estimate}`` for all reported destinations."""
        return {entry.dest: entry.estimate for entry in self.entries}

    def __iter__(self) -> Iterator[TopKEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> TopKEntry:
        return self.entries[index]


def rank_frequencies(
    frequencies: Dict[int, int], k: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Deterministically rank a ``{dest: f^s}`` sample-frequency map.

    Orders by descending sample frequency with ascending destination as
    the tie-break (the convention every estimator and test in this repo
    shares), truncating to the top ``k`` entries when ``k`` is given.
    Both the scalar and the slab-decode query paths feed their samples
    through this one function, so ranking can never diverge between
    them.
    """
    ranked = sorted(
        frequencies.items(), key=lambda item: (-item[1], item[0])
    )
    return ranked if k is None else ranked[:k]


def build_result(
    ranked: List[Tuple[int, int]],
    stop_level: int,
    sample_size: int,
    target_size: float,
) -> TopKResult:
    """Assemble a :class:`TopKResult` from ``(dest, f^s)`` pairs.

    ``ranked`` must already be sorted by sample frequency, best first;
    estimates are the sample frequencies scaled by ``2 ** stop_level``.
    """
    scale = 1 << stop_level
    entries = tuple(
        TopKEntry(dest=dest, estimate=scale * freq, sample_frequency=freq)
        for dest, freq in ranked
    )
    return TopKResult(
        entries=entries,
        stop_level=stop_level,
        sample_size=sample_size,
        target_size=target_size,
    )
