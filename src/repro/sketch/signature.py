"""Count signatures: the per-bucket state of a Distinct-Count Sketch.

Each second-level hash bucket keeps a *count signature* (Section 3):

* one **total element count** — the net number of source-destination
  pairs hashed into the bucket, and
* ``pair_bits`` **bit-location counts** — for each bit position ``j`` of
  the pair encoding, the net number of pairs in the bucket whose ``j``-th
  bit is 1.

Because every counter is updated by ``+delta``/``-delta`` symmetrically,
a matched insert/delete pair leaves the signature exactly as if the pair
had never been seen — this is what makes the whole sketch
delete-resistant.  A bucket holding exactly one *distinct* pair (with any
positive multiplicity) can be recognized and decoded: every bit count is
either 0 (bit is 0) or equal to the total (bit is 1); any intermediate
value witnesses a collision.
"""

from __future__ import annotations

from typing import List, Optional

from ..exceptions import MergeError, ParameterError


class CountSignature:
    """The counter array for one second-level hash bucket.

    Args:
        pair_bits: number of bits in the pair encoding (``2 log2 m``).

    The signature is conceptually the slice ``X[i, j, k, *]`` of the
    paper's four-dimensional sketch array: index 0 is the total count,
    indices ``1..pair_bits`` are the bit-location counts (we store the
    total separately for clarity).
    """

    __slots__ = ("pair_bits", "total", "bit_counts")

    def __init__(self, pair_bits: int) -> None:
        if pair_bits < 1:
            raise ParameterError(f"pair_bits must be >= 1, got {pair_bits}")
        self.pair_bits = pair_bits
        self.total = 0
        self.bit_counts: List[int] = [0] * pair_bits

    def update(self, pair_code: int, delta: int) -> None:
        """Apply one stream update for ``pair_code`` with weight ``delta``.

        Adds ``delta`` to the total and to the counter of every set bit
        of ``pair_code``.  Cost: O(popcount) <= O(pair_bits).
        """
        # Bits above pair_bits would silently corrupt recovery; catch the
        # programming error instead (the domain layer normally prevents it).
        if pair_code >> self.pair_bits:
            raise ParameterError(
                f"pair code {pair_code} needs more than {self.pair_bits} bits"
            )
        self.total += delta
        bits = self.bit_counts
        code = pair_code
        while code:
            low = code & -code
            bits[low.bit_length() - 1] += delta
            code ^= low

    @property
    def is_zero(self) -> bool:
        """True when every counter is zero (bucket holds nothing)."""
        if self.total != 0:
            return False
        return not any(self.bit_counts)

    def recover_singleton(self) -> Optional[int]:
        """Decode the unique pair in this bucket, if it is a singleton.

        Implements the paper's ``ReturnSingleton`` test: the bucket is a
        singleton iff the total is positive and each bit count is either
        0 or equal to the total.  Returns the decoded pair code, or
        ``None`` for an empty bucket or a collision.
        """
        total = self.total
        if total <= 0:
            # Empty (or, in an ill-formed stream, negative) bucket.
            return None
        code = 0
        for index, count in enumerate(self.bit_counts):
            if count == total:
                code |= 1 << index
            elif count != 0:
                return None  # collision: >= 2 distinct pairs
        return code

    # linear: merge must stay an exact integer addition (RL013)
    def merge(self, other: "CountSignature") -> None:
        """Add ``other``'s counters into this signature in place.

        Valid because the sketch is linear: the merged signature equals
        the signature of the concatenated streams.
        """
        if other.pair_bits != self.pair_bits:
            raise MergeError(
                f"cannot merge signatures of widths {self.pair_bits} "
                f"and {other.pair_bits}"
            )
        self.total += other.total
        mine = self.bit_counts
        for index, count in enumerate(other.bit_counts):
            mine[index] += count

    # linear: subtract must stay an exact integer subtraction (RL013)
    def subtract(self, other: "CountSignature") -> None:
        """Subtract ``other``'s counters from this signature in place.

        Valid because the sketch is linear: subtracting the signature of
        a sub-stream yields exactly the signature of the remaining
        stream, as if the subtracted updates had never been seen.
        """
        if other.pair_bits != self.pair_bits:
            raise MergeError(
                f"cannot subtract signatures of widths {self.pair_bits} "
                f"and {other.pair_bits}"
            )
        self.total -= other.total
        mine = self.bit_counts
        for index, count in enumerate(other.bit_counts):
            mine[index] -= count

    def copy(self) -> "CountSignature":
        """Return an independent copy of this signature."""
        clone = CountSignature(self.pair_bits)
        clone.total = self.total
        clone.bit_counts = list(self.bit_counts)
        return clone

    def counter_values(self) -> List[int]:
        """Return ``[total, bit_0, ..., bit_{pair_bits-1}]`` (a copy)."""
        return [self.total] + list(self.bit_counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountSignature):
            return NotImplemented
        return (
            self.pair_bits == other.pair_bits
            and self.total == other.total
            and self.bit_counts == other.bit_counts
        )

    def __repr__(self) -> str:
        return (
            f"CountSignature(pair_bits={self.pair_bits}, total={self.total})"
        )
