"""Worker-process pool backing ``ShardedSketch(backend="process")``.

Each worker owns a private :class:`TrackingDistinctCountSketch` and
drains a FIFO command pipe — ``ingest`` (a chunk of update tuples),
``snapshot`` (serialize the sketch back to the parent), ``close``.
Because all shard sketches share params and seed, the parent merges the
snapshots through :mod:`repro.sketch.serialize` into the exact sketch a
single-process run would have produced (linearity, Section 3).

The pool prefers the ``fork`` start method (cheap, no import replay) and
falls back to ``spawn``; if no start method is usable at all it raises
:class:`PoolUnavailable` and the caller degrades to the synchronous
backend.  No third-party dependencies: plain ``multiprocessing`` pipes
carrying JSON sketch payloads.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.trace import SpanDict
from ..obs.trace import span as trace_span
from .params import SketchParams

#: Update tuple shipped over the pipe: ``(source, dest, delta)``.
UpdateTuple = Tuple[int, int, int]


class PoolUnavailable(RuntimeError):
    """Raised when a worker pool cannot be started on this platform."""


class WorkerDied(RuntimeError):
    """A shard worker's pipe broke: the process is gone or wedged.

    Carries the shard index so a supervisor can respawn exactly the
    failed worker (see :mod:`repro.resilience.supervisor`).
    """

    def __init__(self, shard: int, detail: str = "") -> None:
        super().__init__(
            f"shard {shard} worker died{': ' + detail if detail else ''}"
        )
        self.shard = shard


def _worker_main(
    conn: Any,
    params: SketchParams,
    seed: int,
    sketch_backend: str,
    shard: int,
    trace_every: int,
) -> None:
    """Worker loop: apply ingest chunks, answer snapshot requests."""
    # Imported here so ``spawn`` workers pay the import in the child.
    from ..obs.catalog import WORKER_UPDATES
    from ..obs.registry import Registry
    from ..obs.trace import Tracer, install_tracer
    from ..types import FlowUpdate
    from . import serialize
    from .tracking import TrackingDistinctCountSketch

    tracer: Optional[Tracer] = None
    if trace_every > 0:
        tracer = Tracer(sample_every=trace_every)
        install_tracer(tracer)

    def fresh_registry() -> Tuple[Registry, Any]:
        registry = Registry()
        counter = registry.counter_from(WORKER_UPDATES).labels(
            shard=str(shard)
        )
        return registry, counter

    registry, updates_total = fresh_registry()
    sketch = TrackingDistinctCountSketch(
        params, seed=seed, backend=sketch_backend
    )
    while True:
        try:
            command, payload = conn.recv()
        except EOFError:
            break
        if command == "ingest":
            with trace_span("worker.ingest"):
                sketch.update_batch(
                    [FlowUpdate(s, d, delta) for s, d, delta in payload]
                )
            updates_total.inc(len(payload))
        elif command == "snapshot":
            conn.send(serialize.dumps(sketch))
        elif command == "load":
            # Replace the sketch wholesale (checkpoint restore).
            loaded = serialize.loads(payload, backend=sketch_backend)
            assert isinstance(loaded, TrackingDistinctCountSketch)
            sketch = loaded
            # Rebuild the observability state from the restored sketch:
            # ``updates_processed`` travels in the wire format, so the
            # counter restarts exactly where the snapshot left off and
            # the parent's replace-by-key merge can never double-count
            # across a respawn.
            registry, updates_total = fresh_registry()
            updates_total.inc(sketch.updates_processed)
        elif command == "obs":
            conn.send(registry.snapshot())
        elif command == "trace":
            conn.send(tracer.drain() if tracer is not None else [])
        elif command == "close":
            break
    conn.close()


def _cleanup(connections: List[Any], processes: List[Any]) -> None:
    """Best-effort teardown used by both ``close`` and the finalizer."""
    for conn in connections:
        try:
            conn.send(("close", None))
        except (OSError, ValueError, BrokenPipeError):
            pass
        try:
            conn.close()
        except OSError:
            pass
    for process in processes:
        process.join(timeout=5)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5)


class ProcessShardPool:
    """One pipe-fed worker process per shard.

    Args:
        params: sketch shape shared by every worker.
        seed: sketch seed shared by every worker (required for merging).
        shards: number of worker processes.
        sketch_backend: storage backend of each worker's sketch.
        trace_every: worker-side span sampling rate — each worker
            installs its own :class:`~repro.obs.trace.Tracer` keeping 1
            in ``trace_every`` root spans (0 disables worker tracing).
            A plain int so it survives both ``fork`` and ``spawn``.

    Raises:
        PoolUnavailable: when no multiprocessing start method works.
    """

    def __init__(
        self,
        params: SketchParams,
        seed: int,
        shards: int,
        sketch_backend: str = "reference",
        trace_every: int = 0,
    ) -> None:
        context = None
        try:
            import multiprocessing

            for method in ("fork", "spawn"):
                try:
                    context = multiprocessing.get_context(method)
                    break
                except ValueError:
                    continue
        except ImportError as error:
            raise PoolUnavailable(str(error)) from error
        if context is None:
            raise PoolUnavailable("no usable multiprocessing start method")
        self._context = context
        self._params = params
        self._seed = seed
        self._sketch_backend = sketch_backend
        self._trace_every = trace_every
        self._connections: List[Any] = []
        self._processes: List[Any] = []
        try:
            for shard in range(shards):
                parent_conn, process = self._spawn(shard)
                self._connections.append(parent_conn)
                self._processes.append(process)
        except (OSError, ValueError) as error:
            _cleanup(self._connections, self._processes)
            raise PoolUnavailable(str(error)) from error
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _cleanup, self._connections, self._processes
        )

    def _spawn(self, shard: int) -> Tuple[Any, Any]:
        """Start one worker; returns its (parent pipe, process)."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._params,
                self._seed,
                self._sketch_backend,
                shard,
                self._trace_every,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return parent_conn, process

    @property
    def num_shards(self) -> int:
        """Number of worker processes."""
        return len(self._processes)

    def is_alive(self, shard: int) -> bool:
        """True when the shard's worker process is still running."""
        if self._closed:
            return False
        return bool(self._processes[shard].is_alive())

    def pid(self, shard: int) -> Optional[int]:
        """OS process id of the shard's worker (None once closed)."""
        if self._closed:
            return None
        pid = self._processes[shard].pid
        return int(pid) if pid is not None else None

    def respawn(self, shard: int, payload: Optional[bytes] = None) -> None:
        """Replace a (dead) worker with a fresh process.

        ``payload`` — a :mod:`repro.sketch.serialize` snapshot — is
        loaded into the new worker before it accepts ingest, restoring
        the shard's sketch state (checkpoint restore).  Without it the
        worker starts from an empty sketch.

        Raises:
            PoolUnavailable: when the replacement process cannot start.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        old_conn = self._connections[shard]
        old_process = self._processes[shard]
        try:
            old_conn.close()
        except OSError:
            pass
        old_process.join(timeout=1)
        if old_process.is_alive():
            old_process.terminate()
            old_process.join(timeout=5)
        try:
            parent_conn, process = self._spawn(shard)
        except (OSError, ValueError) as error:
            raise PoolUnavailable(str(error)) from error
        try:
            if payload is not None:
                parent_conn.send(("load", payload))
        except (OSError, ValueError, BrokenPipeError) as error:
            # The replacement worker never became usable: release its
            # pipe end and reap the process before reporting failure,
            # or every failed respawn leaks a pipe pair and a zombie.
            parent_conn.close()
            process.terminate()
            process.join(timeout=5)
            raise PoolUnavailable(str(error)) from error
        self._connections[shard] = parent_conn
        self._processes[shard] = process

    def ingest(self, shard: int, updates: Sequence[UpdateTuple]) -> None:
        """Queue a chunk of update tuples on one worker (non-blocking).

        Raises:
            WorkerDied: when the worker's pipe is broken.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        try:
            with trace_span("sharded.pipe_send"):
                self._connections[shard].send(("ingest", list(updates)))
        except (OSError, ValueError, BrokenPipeError) as error:
            raise WorkerDied(shard, str(error)) from error

    def snapshot(self, shard: int) -> bytes:
        """Serialized state of one worker's sketch (drains its queue).

        Raises:
            WorkerDied: when the worker died before answering.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        conn = self._connections[shard]
        try:
            with trace_span("sharded.pipe_send"):
                conn.send(("snapshot", None))
            with trace_span("sharded.pipe_recv"):
                payload: bytes = conn.recv()
        except (OSError, EOFError, ValueError, BrokenPipeError) as error:
            raise WorkerDied(shard, str(error)) from error
        return payload

    def snapshots(self) -> List[bytes]:
        """Serialized state of every worker, request-all then drain-all.

        Raises:
            WorkerDied: when any worker died before answering.
        """
        return self._request_all("snapshot")

    def obs_snapshots(self) -> List[Dict[str, Any]]:
        """Cumulative registry snapshot from every worker.

        Each element is a :meth:`repro.obs.Registry.snapshot` document
        carrying the worker's own counters (``repro_worker_updates_total``
        labelled by shard).  Snapshots are cumulative since the worker's
        last (re)start, sized for replace-by-key absorption into the
        parent registry (:meth:`repro.obs.Registry.absorb`).

        Raises:
            WorkerDied: when any worker died before answering.
        """
        return self._request_all("obs")

    def drain_traces(self) -> List[SpanDict]:
        """Drain every worker's span buffer into one flat list.

        Workers buffer spans locally (see the ``trace_every`` pool
        argument); draining moves them to the parent exactly once, so
        repeated calls never duplicate a span.  Spans carry the worker
        ``pid``, keeping per-process trees separable after the merge.

        Raises:
            WorkerDied: when any worker died before answering.
        """
        merged: List[SpanDict] = []
        for spans in self._request_all("trace"):
            merged.extend(spans)
        return merged

    def _request_all(self, command: str) -> List[Any]:
        """Broadcast ``command`` then collect one reply per worker."""
        if self._closed:
            raise PoolUnavailable("pool is closed")
        for shard, conn in enumerate(self._connections):
            try:
                with trace_span("sharded.pipe_send"):
                    conn.send((command, None))
            except (OSError, ValueError, BrokenPipeError) as error:
                raise WorkerDied(shard, str(error)) from error
        replies: List[Any] = []
        for shard, conn in enumerate(self._connections):
            try:
                with trace_span("sharded.pipe_recv"):
                    replies.append(conn.recv())
            except (OSError, EOFError, ValueError, BrokenPipeError) as error:
                raise WorkerDied(shard, str(error)) from error
        return replies

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _cleanup(self._connections, self._processes)

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> Optional[bool]:
        self.close()
        return None

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"ProcessShardPool(shards={self.num_shards}, {state})"
