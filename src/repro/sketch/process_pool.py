"""Worker-process pool backing ``ShardedSketch(backend="process")``.

Each worker owns a private :class:`TrackingDistinctCountSketch` and
drains a FIFO command pipe — ``ingest`` (a chunk of update tuples),
``snapshot`` (serialize the sketch back to the parent), ``close``.
Because all shard sketches share params and seed, the parent merges the
snapshots through :mod:`repro.sketch.serialize` into the exact sketch a
single-process run would have produced (linearity, Section 3).

Besides the snapshot-over-pipe transport, the pool speaks two faster
sync protocols for packed sketches (selected by ``transport=``):

* ``"delta"`` — workers track the buckets touched since the last sync
  (a dirty-index per :class:`~repro.sketch.arena.SignatureArena`) and
  ship only those ``(bucket, signed counter delta)`` runs as raw int64
  bytes.  Every reply is epoch-tagged: the parent detects a missed or
  stale sync and falls back to a full resync, so the folded running
  sum is always exact.
* ``"shm"`` — each worker copies its packed arena slabs (raw ``_buf``
  words plus the slot→bucket map) into one ``multiprocessing.shared_
  memory`` segment per worker; the parent maps the segment and gathers
  bucket state with numpy views — no pickling, no JSON, no per-counter
  Python objects.  Segments are grown by generation (create new,
  unlink old) because POSIX shm cannot resize in place.

Shared-memory segments are owned by the workers but *guaranteed* to be
unlinked by the parent: ``close()`` asks workers to unlink, then sweeps
every segment this pool ever created (by unique name prefix under
``/dev/shm``), and an ``atexit`` hook re-runs the sweep for pools that
were never closed — a SIGKILL'd worker cannot leak a segment past
process exit.

The pool prefers the ``fork`` start method (cheap, no import replay) and
falls back to ``spawn``; if no start method is usable at all it raises
:class:`PoolUnavailable` and the caller degrades to the synchronous
backend.  No third-party dependencies: plain ``multiprocessing`` pipes
carrying JSON sketch payloads (or raw delta bytes / shm headers).
"""

from __future__ import annotations

import atexit
import itertools
import os
import weakref
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .._accel import np as _np
from ..obs.trace import SpanDict
from ..obs.trace import span as trace_span
from .params import SketchParams

#: Update tuple shipped over the pipe: ``(source, dest, delta)``.
UpdateTuple = Tuple[int, int, int]

#: Sync transports the pool understands (resolved by ``ShardedSketch``).
POOL_TRANSPORTS = ("pipe", "shm", "delta")

#: Distinguishes segments of concurrently-live pools in one process.
_POOL_SEQ = itertools.count()


class PoolUnavailable(RuntimeError):
    """Raised when a worker pool cannot be started on this platform."""


class WorkerDied(RuntimeError):
    """A shard worker's pipe broke: the process is gone or wedged.

    Carries the shard index so a supervisor can respawn exactly the
    failed worker (see :mod:`repro.resilience.supervisor`).
    """

    def __init__(self, shard: int, detail: str = "") -> None:
        super().__init__(
            f"shard {shard} worker died{': ' + detail if detail else ''}"
        )
        self.shard = shard


# -- shared-memory segment lifecycle ------------------------------------------

def _unregister_segment(name: str) -> None:
    """Cancel our own resource-tracker registration (best effort).

    ``SharedMemory`` registers every create *and* attach with the
    process tree's shared resource tracker.  The pool manages segment
    lifecycle explicitly (workers unlink on exit, the parent sweeps),
    so each registration is cancelled immediately — otherwise create/
    attach/unlink events from different processes unbalance the shared
    cache and the tracker prints spurious KeyError tracebacks or
    "leaked shared_memory" warnings at exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name.lstrip("/"), "shared_memory")
    except (ImportError, KeyError, OSError, ValueError):
        pass


def _unlink_segment(name: str) -> None:
    """Remove one named segment, tolerating its prior disappearance.

    Unlinks through the filesystem rather than ``SharedMemory.unlink``
    where possible: registrations were already cancelled at create/
    attach time, so the method's built-in ``unregister`` would only
    unbalance the tracker cache.
    """
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        try:
            (shm_dir / name).unlink()
        except OSError:
            pass
    else:  # non-Linux POSIX: attach purely to reach unlink()
        try:
            from multiprocessing.shared_memory import SharedMemory

            segment = SharedMemory(name=name)
        except (ImportError, OSError, ValueError):
            return
        try:
            # The attach registered and unlink() unregisters: balanced.
            segment.unlink()
        except OSError:
            pass
        finally:
            segment.close()


def _sweep_segments(prefix: str, known: Set[str]) -> None:
    """Unlink every segment this pool ever created.

    Known names cover all platforms; the ``/dev/shm`` scan additionally
    catches segments a worker created and died before announcing (a
    grow-then-SIGKILL window the parent never hears about).
    """
    names = set(known)
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        try:
            for path in shm_dir.iterdir():
                if path.name.startswith(prefix):
                    names.add(path.name)
        except OSError:
            pass
    for name in names:
        _unlink_segment(name)
    known.clear()


#: prefix -> (owning pid, live segment names); swept at interpreter
#: exit for any pool that was never closed (the last-resort guard).
_LIVE_POOL_SEGMENTS: Dict[str, Tuple[int, Set[str]]] = {}
_ATEXIT_INSTALLED = False


def _sweep_leftover_segments() -> None:
    """``atexit`` guard: unlink segments of pools never closed."""
    for prefix, (owner_pid, known) in list(_LIVE_POOL_SEGMENTS.items()):
        if owner_pid == os.getpid():
            _sweep_segments(prefix, known)
            _LIVE_POOL_SEGMENTS.pop(prefix, None)


def _register_pool_segments(prefix: str, known: Set[str]) -> None:
    global _ATEXIT_INSTALLED
    _LIVE_POOL_SEGMENTS[prefix] = (os.getpid(), known)
    if not _ATEXIT_INSTALLED:
        atexit.register(_sweep_leftover_segments)
        _ATEXIT_INSTALLED = True


class _ShmPublisher:
    """Worker-side slab writer: one shared-memory segment per worker.

    Each :meth:`publish` lays the worker's non-empty arenas out
    contiguously — per arena the int64 slot→bucket map followed by the
    raw counter buffer — and returns a small header (segment name,
    generation, layout) for the pipe.  The segment is grown by
    *generation*: a bigger replacement is created under a fresh name
    and the old one unlinked, since POSIX shm cannot resize in place.
    """

    def __init__(self, prefix: str, shard: int) -> None:
        self._prefix = prefix
        self._shard = shard
        self._generation = 0
        self._segment: Optional[Any] = None

    def _ensure_capacity(self, needed_bytes: int) -> Any:
        segment = self._segment
        if segment is not None and segment.size >= needed_bytes:
            return segment
        if segment is not None:
            self._segment = None
            segment.close()
            _unlink_segment(segment.name)
        from multiprocessing.shared_memory import SharedMemory

        self._generation += 1
        # Worker pid in the name keeps respawned workers from colliding
        # with a dead predecessor's not-yet-swept segment.
        name = (
            f"{self._prefix}s{self._shard}p{os.getpid()}"
            f"g{self._generation}"
        )
        # Double the request so steady growth re-creates rarely.
        segment = SharedMemory(
            name=name, create=True, size=max(needed_bytes, 8) * 2
        )
        _unregister_segment(segment.name)
        self._segment = segment
        return segment

    def publish(self, sketch: Any) -> Dict[str, Any]:
        """Copy the sketch's packed slabs into shared memory.

        Returns the header the parent needs to map them back:
        ``{"name", "generation", "layout": [(level, j, slots), ...],
        "updates", "net"}``.
        """
        arenas = sketch._arenas
        assert arenas is not None, "shm transport requires packed arenas"
        entries: List[Tuple[int, int, Any, int]] = []
        total_words = 0
        for level, row in enumerate(arenas):
            for j, arena in enumerate(row):
                slot_count = len(arena._bucket_of)
                if slot_count == 0:
                    continue
                entries.append((level, j, arena, slot_count))
                total_words += slot_count * (1 + arena.stride)
        segment = self._ensure_capacity(total_words * 8)
        words = _np.frombuffer(segment.buf, dtype=_np.int64)
        offset = 0
        layout: List[Tuple[int, int, int]] = []
        for level, j, arena, slot_count in entries:
            words[offset:offset + slot_count] = _np.asarray(
                arena._bucket_of, dtype=_np.int64
            )
            offset += slot_count
            flat = _np.frombuffer(arena._buf, dtype=_np.int64)
            words[offset:offset + flat.size] = flat
            offset += flat.size
            layout.append((level, j, slot_count))
        del words  # release the buffer export before any future close()
        return {
            "name": segment.name,
            "generation": self._generation,
            "layout": layout,
            "updates": sketch.updates_processed,
            "net": sketch.net_total,
        }

    def close(self) -> None:
        """Unlink this worker's segment (idempotent, teardown-safe)."""
        segment = self._segment
        self._segment = None
        if segment is None:
            return
        try:
            segment.close()
        except (OSError, BufferError):
            pass
        _unlink_segment(segment.name)


def _track_arena_deltas(sketch: Any) -> None:
    """Enable dirty-bucket tracking on every arena of a packed sketch."""
    arenas = sketch._arenas
    assert arenas is not None, "delta transport requires packed arenas"
    for row in arenas:
        for arena in row:
            arena.track_deltas(True)


def _worker_main(
    conn: Any,
    params: SketchParams,
    seed: int,
    sketch_backend: str,
    shard: int,
    trace_every: int,
    transport: str = "pipe",
    shm_prefix: str = "",
) -> None:
    """Worker loop: apply ingest chunks, answer sync requests."""
    # Imported here so ``spawn`` workers pay the import in the child.
    from ..obs.catalog import WORKER_UPDATES
    from ..obs.registry import Registry
    from ..obs.trace import Tracer, install_tracer
    from ..types import FlowUpdate
    from . import serialize
    from .tracking import TrackingDistinctCountSketch

    tracer: Optional[Tracer] = None
    if trace_every > 0:
        tracer = Tracer(sample_every=trace_every)
        install_tracer(tracer)

    def fresh_registry() -> Tuple[Registry, Any]:
        registry = Registry()
        counter = registry.counter_from(WORKER_UPDATES).labels(
            shard=str(shard)
        )
        return registry, counter

    registry, updates_total = fresh_registry()
    sketch = TrackingDistinctCountSketch(
        params, seed=seed, backend=sketch_backend
    )
    if transport == "delta":
        _track_arena_deltas(sketch)
    publisher: Optional[_ShmPublisher] = None
    #: Monotonic sync counter: one tick per delta reply, so the parent
    #: can prove no other drain slipped in between its own syncs.
    epoch = 0
    try:
        while True:
            try:
                command, payload = conn.recv()
            except EOFError:
                break
            if command == "ingest":
                with trace_span("worker.ingest"):
                    sketch.update_batch(
                        [FlowUpdate(s, d, delta) for s, d, delta in payload]
                    )
                updates_total.inc(len(payload))
            elif command == "snapshot":
                conn.send(serialize.dumps(sketch))
            elif command == "delta":
                epoch += 1
                arena_payload: List[Tuple[int, int, bytes, bytes]] = []
                assert sketch._arenas is not None
                for level, row in enumerate(sketch._arenas):
                    for j, arena in enumerate(row):
                        if payload:  # full resync: absolute rows
                            arena.reset_deltas()
                            buckets, rows = arena.export_rows()
                        else:
                            buckets, rows = arena.drain_deltas()
                        if len(buckets):
                            arena_payload.append(
                                (level, j, buckets.tobytes(), rows.tobytes())
                            )
                conn.send(
                    {
                        "epoch": epoch,
                        "full": bool(payload),
                        "arenas": arena_payload,
                        "updates": sketch.updates_processed,
                        "net": sketch.net_total,
                    }
                )
            elif command == "shm":
                if publisher is None:
                    publisher = _ShmPublisher(shm_prefix, shard)
                conn.send(publisher.publish(sketch))
            elif command == "load":
                # Replace the sketch wholesale (checkpoint restore).
                loaded = serialize.loads(payload, backend=sketch_backend)
                assert isinstance(loaded, TrackingDistinctCountSketch)
                sketch = loaded
                if transport == "delta":
                    # Fresh dirty indexes: the parent invalidated its
                    # running sum on restore and will full-resync.
                    _track_arena_deltas(sketch)
                # Rebuild the observability state from the restored
                # sketch: ``updates_processed`` travels in the wire
                # format, so the counter restarts exactly where the
                # snapshot left off and the parent's replace-by-key
                # merge can never double-count across a respawn.
                registry, updates_total = fresh_registry()
                updates_total.inc(sketch.updates_processed)
            elif command == "obs":
                conn.send(registry.snapshot())
            elif command == "trace":
                conn.send(tracer.drain() if tracer is not None else [])
            elif command == "close":
                break
    finally:
        if publisher is not None:
            publisher.close()
        conn.close()


def _cleanup(
    connections: List[Any],
    processes: List[Any],
    shm_prefix: str = "",
    known_segments: Optional[Set[str]] = None,
    attachments: Optional[Dict[int, Any]] = None,
) -> None:
    """Best-effort teardown used by both ``close`` and the finalizer.

    Workers are asked to exit (unlinking their own segments on the
    way), then the parent closes its attachments and sweeps whatever
    segments remain — the unlink guarantee holds even when a worker
    was SIGKILL'd mid-sync.
    """
    for conn in connections:
        try:
            conn.send(("close", None))
        except (OSError, ValueError, BrokenPipeError):
            pass
        try:
            conn.close()
        except OSError:
            pass
    for process in processes:
        process.join(timeout=5)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5)
    if attachments is not None:
        for segment in list(attachments.values()):
            try:
                segment.close()
            except (OSError, BufferError):
                pass
        attachments.clear()
    if shm_prefix:
        if known_segments is None:
            known_segments = set()
        _sweep_segments(shm_prefix, known_segments)
        _LIVE_POOL_SEGMENTS.pop(shm_prefix, None)


class ProcessShardPool:
    """One pipe-fed worker process per shard.

    Args:
        params: sketch shape shared by every worker.
        seed: sketch seed shared by every worker (required for merging).
        shards: number of worker processes.
        sketch_backend: storage backend of each worker's sketch.
        trace_every: worker-side span sampling rate — each worker
            installs its own :class:`~repro.obs.trace.Tracer` keeping 1
            in ``trace_every`` root spans (0 disables worker tracing).
            A plain int so it survives both ``fork`` and ``spawn``.
        transport: sync protocol — ``"pipe"`` (serialized snapshots),
            ``"shm"`` (shared-memory slab gather), or ``"delta"``
            (dirty-bucket delta propagation).  The packed transports
            are resolved by :class:`~repro.sketch.sharded.ShardedSketch`;
            the pool trusts the caller's choice.

    Raises:
        PoolUnavailable: when no multiprocessing start method works.
    """

    def __init__(
        self,
        params: SketchParams,
        seed: int,
        shards: int,
        sketch_backend: str = "reference",
        trace_every: int = 0,
        transport: str = "pipe",
    ) -> None:
        if transport not in POOL_TRANSPORTS:
            raise PoolUnavailable(
                f"unknown transport {transport!r}; "
                f"expected one of {POOL_TRANSPORTS}"
            )
        context = None
        try:
            import multiprocessing

            for method in ("fork", "spawn"):
                try:
                    context = multiprocessing.get_context(method)
                    break
                except ValueError:
                    continue
        except ImportError as error:
            raise PoolUnavailable(str(error)) from error
        if context is None:
            raise PoolUnavailable("no usable multiprocessing start method")
        if transport == "shm":
            try:
                import multiprocessing.shared_memory  # noqa: F401
            except ImportError as error:
                raise PoolUnavailable(str(error)) from error
        self._context = context
        self._params = params
        self._seed = seed
        self._sketch_backend = sketch_backend
        self._trace_every = trace_every
        self.transport = transport
        #: Unique segment-name prefix for this pool (pid + sequence):
        #: segments cross the process boundary by *name string* only.
        self.shm_prefix = f"repro{os.getpid()}x{next(_POOL_SEQ)}"
        #: Every segment name a worker has announced (sweep targets).
        self._known_segments: Set[str] = set()
        #: shard -> currently mapped SharedMemory attachment.
        self._attachments: Dict[int, Any] = {}
        #: shard -> name of that worker's current segment.
        self._segment_names: Dict[int, str] = {}
        self._connections: List[Any] = []
        self._processes: List[Any] = []
        try:
            for shard in range(shards):
                parent_conn, process = self._spawn(shard)
                self._connections.append(parent_conn)
                self._processes.append(process)
        except (OSError, ValueError) as error:
            _cleanup(self._connections, self._processes)
            raise PoolUnavailable(str(error)) from error
        self._closed = False
        if transport == "shm":
            _register_pool_segments(self.shm_prefix, self._known_segments)
        self._finalizer = weakref.finalize(
            self,
            _cleanup,
            self._connections,
            self._processes,
            self.shm_prefix if transport == "shm" else "",
            self._known_segments,
            self._attachments,
        )

    def _spawn(self, shard: int) -> Tuple[Any, Any]:
        """Start one worker; returns its (parent pipe, process)."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._params,
                self._seed,
                self._sketch_backend,
                shard,
                self._trace_every,
                self.transport,
                self.shm_prefix,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return parent_conn, process

    @property
    def num_shards(self) -> int:
        """Number of worker processes."""
        return len(self._processes)

    def is_alive(self, shard: int) -> bool:
        """True when the shard's worker process is still running."""
        if self._closed:
            return False
        return bool(self._processes[shard].is_alive())

    def pid(self, shard: int) -> Optional[int]:
        """OS process id of the shard's worker (None once closed)."""
        if self._closed:
            return None
        pid = self._processes[shard].pid
        return int(pid) if pid is not None else None

    def respawn(self, shard: int, payload: Optional[bytes] = None) -> None:
        """Replace a (dead) worker with a fresh process.

        ``payload`` — a :mod:`repro.sketch.serialize` snapshot — is
        loaded into the new worker before it accepts ingest, restoring
        the shard's sketch state (checkpoint restore).  Without it the
        worker starts from an empty sketch.  Any shared-memory segment
        the dead worker left behind is unlinked before the replacement
        starts (the new worker creates its own under a fresh name).

        Raises:
            PoolUnavailable: when the replacement process cannot start.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        old_conn = self._connections[shard]
        old_process = self._processes[shard]
        try:
            old_conn.close()
        except OSError:
            pass
        old_process.join(timeout=1)
        if old_process.is_alive():
            old_process.terminate()
            old_process.join(timeout=5)
        self._release_shard_segments(shard)
        try:
            parent_conn, process = self._spawn(shard)
        except (OSError, ValueError) as error:
            raise PoolUnavailable(str(error)) from error
        try:
            if payload is not None:
                parent_conn.send(("load", payload))
        except (OSError, ValueError, BrokenPipeError) as error:
            # The replacement worker never became usable: release its
            # pipe end and reap the process before reporting failure,
            # or every failed respawn leaks a pipe pair and a zombie.
            parent_conn.close()
            process.terminate()
            process.join(timeout=5)
            raise PoolUnavailable(str(error)) from error
        self._connections[shard] = parent_conn
        self._processes[shard] = process

    def _release_shard_segments(self, shard: int) -> None:
        """Unmap and unlink one (dead) worker's segments.

        Runs between reaping the old worker and spawning its
        replacement, so the prefix scan can never hit a segment the
        new worker is about to create (fresh pid, fresh generation).
        """
        segment = self._attachments.pop(shard, None)
        if segment is not None:
            try:
                segment.close()
            except (OSError, BufferError):
                pass
        name = self._segment_names.pop(shard, None)
        if name is not None:
            self._known_segments.discard(name)
            _unlink_segment(name)
        shard_prefix = f"{self.shm_prefix}s{shard}p"
        shm_dir = Path("/dev/shm")
        if shm_dir.is_dir():
            try:
                for path in shm_dir.iterdir():
                    if path.name.startswith(shard_prefix):
                        _unlink_segment(path.name)
            except OSError:
                pass

    def ingest(self, shard: int, updates: Sequence[UpdateTuple]) -> None:
        """Queue a chunk of update tuples on one worker (non-blocking).

        Raises:
            WorkerDied: when the worker's pipe is broken.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        try:
            with trace_span("sharded.pipe_send"):
                self._connections[shard].send(("ingest", list(updates)))
        except (OSError, ValueError, BrokenPipeError) as error:
            raise WorkerDied(shard, str(error)) from error

    def snapshot(self, shard: int) -> bytes:
        """Serialized state of one worker's sketch (drains its queue).

        Raises:
            WorkerDied: when the worker died before answering.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        payload = self._request_one(shard, "snapshot", None)
        assert isinstance(payload, bytes)
        return payload

    def snapshots(self) -> List[bytes]:
        """Serialized state of every worker, request-all then drain-all.

        Raises:
            WorkerDied: when any worker died before answering.
        """
        return self._request_all("snapshot")

    # -- delta transport -------------------------------------------------------

    def collect_delta(self, shard: int, full: bool = False) -> Dict[str, Any]:
        """Drain one worker's delta run (epoch-tagged).

        The reply carries the worker's sync epoch, its cumulative
        ``updates``/``net`` totals, and per-arena ``(level, j, bucket
        bytes, delta-row bytes)`` runs — absolute rows when ``full``.

        Raises:
            WorkerDied: when the worker died before answering.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        reply = self._request_one(shard, "delta", bool(full))
        assert isinstance(reply, dict)
        return reply

    def collect_deltas(self, full: bool = False) -> List[Dict[str, Any]]:
        """Drain every worker's delta run (request-all then drain-all).

        The broadcast-then-drain shape is the sync barrier: every
        worker drains against the same logical cut of its stream, and
        a worker death surfaces as :class:`WorkerDied` *before* any
        reply is applied (the caller discards its running sum).

        Raises:
            WorkerDied: when any worker died before answering.
        """
        return self._request_all("delta", bool(full))

    # -- shared-memory transport -------------------------------------------------

    def shm_sync(self) -> List[Dict[str, Any]]:
        """Ask every worker to publish its slabs; returns the headers.

        Each header names the worker's segment and its layout; pass it
        to :meth:`shm_arrays` to map the published state.

        Raises:
            WorkerDied: when any worker died before answering.
        """
        headers = self._request_all("shm")
        for shard, header in enumerate(headers):
            self._known_segments.add(header["name"])
            self._segment_names[shard] = header["name"]
        return headers

    def shm_arrays(
        self, shard: int, header: Dict[str, Any]
    ) -> List[Tuple[int, int, Any, Any]]:
        """Gather one worker's published arenas from shared memory.

        Returns ``(level, j, buckets, rows)`` tuples — the occupied
        bucket indices and their int64 counter rows, gathered straight
        out of the mapped segment (free slots are masked out; their
        rows are all-zero by arena invariant).  The segment stays
        mapped between syncs and is re-attached only when the worker
        grew it under a new name.

        Raises:
            WorkerDied: when the segment vanished under the parent
                (the worker died after a grow, before a sync).
        """
        stride = self._params.pair_bits + 1
        segment = self._attach(shard, header["name"])
        words = _np.frombuffer(segment.buf, dtype=_np.int64)
        out: List[Tuple[int, int, Any, Any]] = []
        offset = 0
        for level, j, slot_count in header["layout"]:
            bucket_of = words[offset:offset + slot_count]
            offset += slot_count
            rows = words[offset:offset + slot_count * stride].reshape(
                slot_count, stride
            )
            offset += slot_count * stride
            mask = bucket_of >= 0
            # Fancy indexing copies, so the returned arrays outlive the
            # mapping and a later re-attach can close it safely.
            out.append((level, j, bucket_of[mask], rows[mask]))
        del words
        return out

    def _attach(self, shard: int, name: str) -> Any:
        """Map a worker's segment by name (cached across syncs)."""
        segment = self._attachments.get(shard)
        if segment is not None:
            if self._segment_names.get(shard) == name and (
                getattr(segment, "name", None) == name
            ):
                return segment
            try:
                segment.close()
            except (OSError, BufferError):
                pass
            del self._attachments[shard]
        from multiprocessing.shared_memory import SharedMemory

        try:
            segment = SharedMemory(name=name)
        except (OSError, ValueError) as error:
            raise WorkerDied(shard, str(error)) from error
        # The attach re-registered the name with the resource tracker;
        # the worker owns the segment, so drop the duplicate claim.
        _unregister_segment(name)
        self._attachments[shard] = segment
        self._segment_names[shard] = name
        return segment

    # -- observability ------------------------------------------------------------

    def obs_snapshots(self) -> List[Dict[str, Any]]:
        """Cumulative registry snapshot from every worker.

        Each element is a :meth:`repro.obs.Registry.snapshot` document
        carrying the worker's own counters (``repro_worker_updates_total``
        labelled by shard).  Snapshots are cumulative since the worker's
        last (re)start, sized for replace-by-key absorption into the
        parent registry (:meth:`repro.obs.Registry.absorb`).

        Raises:
            WorkerDied: when any worker died before answering.
        """
        return self._request_all("obs")

    def drain_traces(self) -> List[SpanDict]:
        """Drain every worker's span buffer into one flat list.

        Workers buffer spans locally (see the ``trace_every`` pool
        argument); draining moves them to the parent exactly once, so
        repeated calls never duplicate a span.  Spans carry the worker
        ``pid``, keeping per-process trees separable after the merge.

        Raises:
            WorkerDied: when any worker died before answering.
        """
        merged: List[SpanDict] = []
        for spans in self._request_all("trace"):
            merged.extend(spans)
        return merged

    def _request_one(self, shard: int, command: str, payload: Any) -> Any:
        """Send one command to one worker and await its reply."""
        conn = self._connections[shard]
        try:
            with trace_span("sharded.pipe_send"):
                conn.send((command, payload))
            with trace_span("sharded.pipe_recv"):
                return conn.recv()
        except (OSError, EOFError, ValueError, BrokenPipeError) as error:
            raise WorkerDied(shard, str(error)) from error

    def _request_all(self, command: str, payload: Any = None) -> List[Any]:
        """Broadcast ``command`` then collect one reply per worker."""
        if self._closed:
            raise PoolUnavailable("pool is closed")
        for shard, conn in enumerate(self._connections):
            try:
                with trace_span("sharded.pipe_send"):
                    conn.send((command, payload))
            except (OSError, ValueError, BrokenPipeError) as error:
                raise WorkerDied(shard, str(error)) from error
        replies: List[Any] = []
        for shard, conn in enumerate(self._connections):
            try:
                with trace_span("sharded.pipe_recv"):
                    replies.append(conn.recv())
            except (OSError, EOFError, ValueError, BrokenPipeError) as error:
                raise WorkerDied(shard, str(error)) from error
        return replies

    def close(self) -> None:
        """Shut every worker down and unlink all segments; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _cleanup(
            self._connections,
            self._processes,
            self.shm_prefix if self.transport == "shm" else "",
            self._known_segments,
            self._attachments,
        )

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> Optional[bool]:
        self.close()
        return None

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ProcessShardPool(shards={self.num_shards}, "
            f"transport={self.transport!r}, {state})"
        )
