"""The Distinct-Count Sketch and the BaseTopk estimator (Sections 3-4).

Structure (Figure 2): a geometric first-level hash ``h`` partitions the
pair domain ``[m^2]`` into ``Theta(log m)`` levels with exponentially
decreasing probabilities; each level holds ``r`` independent second-level
hash tables of ``s`` buckets; each bucket keeps a
:class:`~repro.sketch.signature.CountSignature`.

Maintenance (Section 3): an update ``(u, v, +/-1)`` touches one bucket in
each of the ``r`` tables of level ``h(u, v)`` — ``O(r log m)`` counter
operations, independent of the stream length.  Because signatures are
linear, the sketch is *delete-resistant*: after a matched insert/delete
it is bit-identical to a sketch that never saw the pair.

Estimation (Section 4, Figures 3-4): ``BaseTopk`` walks levels top-down,
recovering singleton buckets into a distinct sample until the sample
reaches ``(1 + eps) * s / 16`` pairs, then reports the k most frequent
destinations in the sample with frequencies scaled by ``2^b``.

Note on the paper's pseudocode: Figure 3 decrements ``b`` once more after
the final ``GetdSample`` call, but Lemma 4.3's analysis scales by ``2^b``
where ``b`` is the *lowest level actually included in the sample*.  We
follow the analysis (scale by the last sampled level), which is the
unbiased choice: a pair lands at level ``>= b`` with probability exactly
``2^-b``.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
    cast,
)

from .._accel import HAVE_NUMPY
from .._accel import np as _np
from .._accel import to_uint64_array as _to_uint64_array
from ..exceptions import MergeError, ParameterError
from ..hashing import CarterWegmanHash, GeometricLevelHash, derive_seed
from ..obs.catalog import (
    SKETCH_ACTIVE_LEVELS,
    SKETCH_MERGES,
    SKETCH_OCCUPIED_BUCKETS,
    SKETCH_QUERIES,
    SKETCH_QUERY_SAMPLE_SIZE,
    SKETCH_SCALAR_FALLBACKS,
    SKETCH_SIGNATURE_COLLISIONS,
    SKETCH_SINGLETONS_RECOVERED,
    SKETCH_SWEEP_DURATION,
    SKETCH_TOPK_CANDIDATES,
    SKETCH_UPDATES,
)
from ..obs.registry import Registry, registry_or_null
from ..obs.trace import span as trace_span
from ..types import AddressDomain, FlowUpdate
from .arena import SignatureArena, pack_codes, singleton_mask
from .estimate import TopKResult, build_result, rank_frequencies
from .params import SketchParams
from .signature import CountSignature

#: Default relative-error parameter used when a query does not supply one.
DEFAULT_EPSILON = 0.25

#: One second-level table's state: the reference sparse map
#: bucket-index -> signature, or its packed-arena equivalent.
BucketStore = Union[Dict[int, CountSignature], SignatureArena]

# A level's state: one store per inner table.
LevelTables = List[BucketStore]

#: Valid values for the ``backend`` constructor argument.
BACKENDS = ("reference", "packed")

#: Whole-walk decode copies counters into 32-bit scratch when every
#: counter is provably below this bound (each update's delta is +/-1,
#: so ``|counter| <= updates_processed``); wider states use int64.
_INT32_SAFE = 2 ** 31


class DistinctCountSketch:
    """Delete-resistant synopsis for top-k distinct-source frequencies.

    Args:
        params: sketch shape, or an :class:`AddressDomain` (in which case
            ``r``/``s`` are taken from the keyword arguments).
        seed: root seed; all hash functions derive from it, so two
            sketches with equal params and seed are structurally
            identical (and therefore mergeable).
        obs: optional :class:`~repro.obs.Registry` for runtime metrics
            (see ``docs/observability.md``).  ``None`` (the default)
            resolves to the no-op null registry, so uninstrumented
            sketches pay one empty method call per update.
        backend: ``"reference"`` (per-bucket ``CountSignature`` objects,
            the paper-faithful baseline) or ``"packed"`` (flat
            :class:`~repro.sketch.arena.SignatureArena` storage feeding
            the vectorized :meth:`update_batch` engine).  Both backends
            are bit-identical: same seeds imply
            :meth:`structurally_equal` states after the same stream.

    Example:
        >>> from repro.types import AddressDomain
        >>> sketch = DistinctCountSketch(AddressDomain(2 ** 16), seed=7)
        >>> for source in range(50):
        ...     sketch.insert(source, dest=9)
        >>> result = sketch.base_topk(1)
        >>> result.destinations[0]
        9
    """

    def __init__(
        self,
        params: Union[SketchParams, AddressDomain],
        *,
        r: int = 3,
        s: int = 128,
        seed: int = 0,
        obs: Optional[Registry] = None,
        backend: str = "reference",
    ) -> None:
        if isinstance(params, AddressDomain):
            params = SketchParams(domain=params, r=r, s=s)
        if backend not in BACKENDS:
            raise ParameterError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.params = params
        self.seed = int(seed)
        self.domain = params.domain
        #: Storage backend: ``"reference"`` or ``"packed"``.
        self.backend = backend
        self._level_hash = GeometricLevelHash(
            max_level=params.num_levels - 1,
            seed=derive_seed(self.seed, "level-hash"),
        )
        self._inner_hashes: List[CarterWegmanHash] = [
            CarterWegmanHash(
                range_size=params.s,
                seed=derive_seed(self.seed, "inner-hash", j),
            )
            for j in range(params.r)
        ]
        self._tables: List[LevelTables] = [
            [self._new_store() for _ in range(params.r)]
            for _ in range(params.num_levels)
        ]
        # Typed alias of the same store objects for the packed hot path
        # (saves an isinstance branch per update).
        self._arenas: Optional[List[List[SignatureArena]]] = None
        if backend == "packed":
            self._arenas = [
                [cast(SignatureArena, store) for store in level_tables]
                for level_tables in self._tables
            ]
        #: Number of stream updates processed (the paper's ``n``).
        self.updates_processed = 0
        #: Net sum of deltas across all updates.
        self.net_total = 0
        #: Observability registry (the null registry when ``obs=None``).
        self.obs: Registry = registry_or_null(obs)
        updates = self.obs.counter_from(SKETCH_UPDATES)
        # Pre-bound children: the hot path must not pay a labels() call.
        self._obs_inserts = updates.labels(op="insert")
        self._obs_deletes = updates.labels(op="delete")
        self._obs_queries = self.obs.counter_from(SKETCH_QUERIES)
        self._obs_singletons = self.obs.counter_from(
            SKETCH_SINGLETONS_RECOVERED
        )
        self._obs_collisions = self.obs.counter_from(
            SKETCH_SIGNATURE_COLLISIONS
        )
        # Per-level children pre-bound at construction so the query
        # path never pays a labels() lookup (the null registry's
        # labels() returns the shared no-op child, so this is free
        # for uninstrumented sketches).
        self._obs_singletons_by_level = [
            self._obs_singletons.labels(level=str(level))
            for level in range(params.num_levels)
        ]
        self._obs_collisions_by_level = [
            self._obs_collisions.labels(level=str(level))
            for level in range(params.num_levels)
        ]
        self._obs_sample_size = self.obs.histogram_from(
            SKETCH_QUERY_SAMPLE_SIZE
        )
        self._obs_topk_candidates = self.obs.histogram_from(
            SKETCH_TOPK_CANDIDATES
        )
        self._obs_scalar_fallbacks = self.obs.counter_from(
            SKETCH_SCALAR_FALLBACKS
        )
        # Registered eagerly so the family exports even before the
        # first *sampled* sweep span observes into it (the tracer
        # shares this registry under `repro-ddos serve`).
        self.obs.histogram_from(SKETCH_SWEEP_DURATION)
        self._obs_merges = self.obs.counter_from(SKETCH_MERGES)
        self.obs.gauge_from(SKETCH_OCCUPIED_BUCKETS).watch(
            self.occupied_buckets
        )
        self.obs.gauge_from(SKETCH_ACTIVE_LEVELS).watch(self.active_levels)

    def _new_store(self) -> BucketStore:
        """One second-level table's empty store for this backend."""
        if self.backend == "packed":
            return SignatureArena(self.params.pair_bits, self.params.s)
        return {}

    # -- maintenance (Section 3) --------------------------------------------

    def update(self, source: int, dest: int, delta: int) -> None:
        """Process one flow update ``(source, dest, delta)``."""
        if delta not in (1, -1):
            raise ParameterError(f"delta must be +1 or -1, got {delta}")
        self._update_pair(self.domain.encode_pair(source, dest), delta)

    def insert(self, source: int, dest: int) -> None:
        """Process an insertion (``delta = +1``)."""
        self._update_pair(self.domain.encode_pair(source, dest), 1)

    def delete(self, source: int, dest: int) -> None:
        """Process a deletion (``delta = -1``)."""
        self._update_pair(self.domain.encode_pair(source, dest), -1)

    def process(self, update: FlowUpdate) -> None:
        """Process a :class:`~repro.types.FlowUpdate`."""
        self._update_pair(
            self.domain.encode_pair(update.source, update.dest), update.delta
        )

    def process_stream(
        self,
        updates: Iterable[FlowUpdate],
        batch_size: Optional[int] = None,
    ) -> int:
        """Process every update from an iterable; returns the count.

        With ``batch_size`` set, updates are buffered into chunks of
        that size and fed through :meth:`update_batch` — the final
        sketch state is bit-identical either way; batching only changes
        the constant per-update cost.
        """
        if batch_size is None:
            count = 0
            for update in updates:
                self.process(update)
                count += 1
            return count
        if batch_size < 1:
            raise ParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        total = 0
        batch: List[FlowUpdate] = []
        append = batch.append
        for update in updates:
            append(update)
            if len(batch) >= batch_size:
                total += self.update_batch(batch)
                batch.clear()
        if batch:
            total += self.update_batch(batch)
        return total

    def update_batch(self, updates: Iterable[FlowUpdate]) -> int:  # hot-path
        """Process a batch of updates with per-batch amortized costs.

        Bit-identical to processing the batch one update at a time (the
        sketch is a linear transform of the update multiset), but: the
        first- and second-level hashes are evaluated through their bulk
        ``levels_many``/``hash_many`` methods, packed-backend counter
        updates become one vectorized scatter per touched arena, and
        the insert/delete observability counters receive one aggregated
        ``inc(n)`` each.  Returns the number of updates applied.
        """
        with trace_span("sketch.update_batch"):
            encode = self.domain.encode_pair
            pairs: List[int] = []
            deltas: List[int] = []
            pairs_append = pairs.append
            deltas_append = deltas.append
            inserts = 0
            for update in updates:
                delta = update.delta
                pairs_append(encode(update.source, update.dest))
                deltas_append(delta)
                if delta > 0:
                    inserts += 1
            count = len(pairs)
            if not count:
                return 0
            self._apply_pairs_batch(pairs, deltas)
            self.updates_processed += count
            deletes = count - inserts
            self.net_total += inserts - deletes
            if inserts:
                self._obs_inserts.inc(inserts)
            if deletes:
                self._obs_deletes.inc(deletes)
            return count

    def _update_pair(self, pair: int, delta: int) -> None:
        """Apply one update for an encoded pair: the sketch hot path."""
        self._apply_pair(pair, delta)
        self.updates_processed += 1
        self.net_total += delta
        if delta > 0:
            self._obs_inserts.inc()
        else:
            self._obs_deletes.inc()

    def _apply_pair(self, pair: int, delta: int) -> None:
        """Counter-state maintenance for one update (no bookkeeping)."""
        level = self._level_hash(pair)
        arenas = self._arenas
        if arenas is not None:
            arena_row = arenas[level]
            for j, inner_hash in enumerate(self._inner_hashes):
                arena_row[j].update(inner_hash(pair), pair, delta)
            return
        tables = self._tables[level]
        pair_bits = self.params.pair_bits
        for j, inner_hash in enumerate(self._inner_hashes):
            bucket = inner_hash(pair)
            table = tables[j]
            signature = table.get(bucket)
            if signature is None:
                signature = CountSignature(pair_bits)
                table[bucket] = signature
            signature.update(pair, delta)
            if signature.is_zero:
                # Prune emptied buckets so "absent" always means "empty";
                # this also keeps the sketch identical to one that never
                # saw a deleted pair.
                del table[bucket]

    def _apply_pairs_batch(
        self, pairs: List[int], deltas: List[int]
    ) -> None:  # hot-path
        """Apply encoded-pair updates, vectorized when possible.

        Falls back to the sequential per-pair path on the reference
        backend, without numpy, or for pair domains wider than 64 bits.
        """
        if self._arenas is not None and HAVE_NUMPY:
            codes = _to_uint64_array(pairs)
            if codes is not None:
                self._apply_batch_vectorized(codes, deltas)
                return
        apply_pair = self._apply_pair
        for index in range(len(pairs)):
            apply_pair(pairs[index], deltas[index])

    def _apply_batch_vectorized(
        self, codes: Any, deltas: List[int]
    ) -> None:  # hot-path
        """The packed-backend batch engine: group, then scatter.

        Sorts the batch by level (stable, so per-bucket update order is
        preserved — not that order matters: counter addition commutes),
        builds the per-update contribution matrix ``[delta, bit_0 *
        delta, ...]`` once, and for each ``(level, table)`` group adds
        all contributions with a single ``np.add.at`` scatter into the
        arena's flat buffer.
        """
        arenas = self._arenas
        assert arenas is not None
        with trace_span("sketch.hash_bulk"):
            levels = self._level_hash.levels_many(codes)
            order = _np.argsort(levels, kind="stable")
            codes_sorted = codes[order]
            deltas_sorted = _np.asarray(deltas, dtype=_np.int64)[order]
            levels_sorted = levels[order]
            bucket_arrays = [
                inner_hash.hash_many(codes_sorted)
                for inner_hash in self._inner_hashes
            ]
        pair_bits = self.params.pair_bits
        shifts = _np.arange(pair_bits, dtype=_np.uint64)
        bits = (
            (codes_sorted[:, None] >> shifts) & _np.uint64(1)
        ).astype(_np.int64)
        count = len(deltas)
        contrib = _np.empty((count, pair_bits + 1), dtype=_np.int64)
        contrib[:, 0] = deltas_sorted
        contrib[:, 1:] = bits * deltas_sorted[:, None]
        unique_levels, starts = _np.unique(levels_sorted, return_index=True)
        boundaries = starts.tolist()
        boundaries.append(count)
        level_list = unique_levels.tolist()
        with trace_span("sketch.scatter"):
            for group in range(len(level_list)):
                level = level_list[group]
                lo = boundaries[group]
                hi = boundaries[group + 1]
                group_contrib = contrib[lo:hi]
                arena_row = arenas[level]
                for j in range(len(bucket_arrays)):
                    store = arena_row[j]
                    slots = store.resolve_slots(bucket_arrays[j][lo:hi])
                    touched = _np.unique(slots)
                    self._scatter_into_store(
                        level, store, slots, group_contrib, touched
                    )

    def _scatter_into_store(
        self,
        level: int,
        store: SignatureArena,
        slots: Any,
        contrib: Any,
        touched: Any,
    ) -> None:  # hot-path
        """Apply one level-group's contributions to one arena.

        Overridden by the tracking sketch to diff singleton state
        around the scatter.  The view is created after slot resolution
        (allocation may have moved the buffer) and dropped before any
        further allocation.
        """
        store.note_touched(touched)
        _np.add.at(store.view2d(), slots, contrib)
        store.free_zero_slots(touched)

    # -- structural accessors -----------------------------------------------

    def level_of(self, source: int, dest: int) -> int:
        """First-level bucket the pair ``(source, dest)`` maps to."""
        return self._level_hash(self.domain.encode_pair(source, dest))

    def inner_bucket(self, j: int, source: int, dest: int) -> int:
        """Second-level bucket of the pair in inner table ``j``."""
        return self._inner_hashes[j](self.domain.encode_pair(source, dest))

    def signature_at(
        self, level: int, j: int, bucket: int
    ) -> Optional[CountSignature]:
        """The signature at ``(level, j, bucket)``, or ``None`` if empty."""
        return self._tables[level][j].get(bucket)

    def return_singleton(self, level: int, j: int, bucket: int) -> Optional[int]:
        """The paper's ``ReturnSingleton``: decode bucket if a singleton.

        Returns the encoded pair, or ``None`` for empty/collision buckets.
        """
        store = self._tables[level][j]
        if isinstance(store, SignatureArena):
            return store.singleton_at(bucket)
        signature = store.get(bucket)
        if signature is None:
            return None
        return signature.recover_singleton()

    def decoded_slab(self, level: int, j: int) -> Tuple[List[int], int]:
        """Decode one ``(level, table)`` slab of occupied buckets.

        Returns ``(singleton pair codes, collision count)``.  On the
        packed backend with numpy this is a single vectorized pass over
        the slab's contiguous counter rows
        (:meth:`~repro.sketch.arena.SignatureArena.decode_slab`); on
        the reference backend — or without numpy, or for pair domains
        wider than 64 bits — it transparently takes the scalar
        per-signature path with identical results.  Does not touch
        observability counters (callers aggregate per scan).
        """
        store = self._tables[level][j]
        if isinstance(store, SignatureArena):
            return store.decode_slab()
        codes: List[int] = []
        append = codes.append
        collisions = 0
        for signature in store.values():
            pair = signature.recover_singleton()
            if pair is None:
                collisions += 1
            else:
                append(pair)
        return codes, collisions

    def _slab_decode_ready(self) -> bool:
        """True when whole-slab decode can serve queries on this sketch."""
        return (
            self._arenas is not None
            and HAVE_NUMPY
            and self.params.pair_bits <= 64
        )

    def _decode_levels(
        self, levels: List[int]
    ) -> List[Tuple[Set[int], int, int]]:
        """Slab-decode whole levels with one application of the kernel.

        The core of the vectorized query path: gathers every requested
        level's arena buffers into one scratch matrix (downcast to
        32-bit counters when ``updates_processed`` proves that safe —
        half the bytes through every predicate pass), runs the
        :func:`~repro.sketch.arena.singleton_mask` kernel once over all
        of them, and splits the recovered codes back per level.
        Returns ``(sample, recovered, collisions)`` tuples aligned with
        ``levels``; does not touch observability counters (callers
        record only the levels they actually visit, matching the scalar
        walk).  Callers must check :meth:`_slab_decode_ready` first.
        """
        arenas = self._arenas
        assert arenas is not None
        views = []
        bounds = [0]
        occupied_by_level = []
        rows = 0
        for level in levels:
            occupied = 0
            for store in arenas[level]:
                if len(store):
                    view = store.view2d()
                    views.append(view)
                    rows += view.shape[0]
                    occupied += len(store)
            bounds.append(rows)
            occupied_by_level.append(occupied)
        if not rows:
            return [(set(), 0, 0) for _ in levels]
        dtype = (
            _np.int32 if self.updates_processed < _INT32_SAFE else _np.int64
        )
        scratch = _np.empty(
            (rows, self.params.pair_bits + 1), dtype=dtype
        )
        position = 0
        for view in views:
            count = view.shape[0]
            # Slice assignment casts while copying, so the int32 path
            # never materializes an intermediate int64 gather.
            scratch[position:position + count] = view
            position += count
        ok, ne = singleton_mask(scratch)
        index = _np.nonzero(ok)[0]
        code_list = pack_codes(~ne[index, 1:]).tolist()
        cuts = _np.searchsorted(index, _np.asarray(bounds)).tolist()
        out: List[Tuple[Set[int], int, int]] = []
        for offset, level in enumerate(levels):
            lo = cuts[offset]
            hi = cuts[offset + 1]
            out.append((
                set(code_list[lo:hi]),
                hi - lo,
                occupied_by_level[offset] - (hi - lo),
            ))
        return out

    def _record_dsample_obs(
        self, level: int, recovered: int, collisions: int
    ) -> None:
        """One aggregated inc per scan, into children pre-bound at
        construction, keeps instrumented scans cheap."""
        if recovered:
            self._obs_singletons_by_level[level].inc(recovered)
        if collisions:
            self._obs_collisions_by_level[level].inc(collisions)

    def get_dsample_batch(self, level: int) -> Set[int]:
        """``GetdSample`` over whole slabs: all singleton pairs at ``level``.

        Semantically identical to :meth:`get_dsample` — the two differ
        only in how buckets are decoded (slab-at-a-time versus the
        conceptual bucket-at-a-time scan of the paper's Figure 4).
        Duplicates (a pair singleton in several tables) collapse in the
        returned set; the per-level singleton/collision counters receive
        the same aggregate increments either way.
        """
        if self._slab_decode_ready():
            sample, recovered, collisions = self._decode_levels([level])[0]
        else:
            # Scalar fallback: one per-signature decode per inner table
            # (reference backend, no numpy, or pair_bits > 64).
            self._obs_scalar_fallbacks.inc(self.params.r)
            sample = set()
            recovered = 0
            collisions = 0
            for j in range(self.params.r):
                codes, slab_collisions = self.decoded_slab(level, j)
                sample.update(codes)
                recovered += len(codes)
                collisions += slab_collisions
        self._record_dsample_obs(level, recovered, collisions)
        return sample

    def dsample_sweep(self) -> Dict[int, Set[int]]:
        """``GetdSample`` for every level of the sketch in one pass.

        Returns ``{level: sample}`` for all levels.  On the packed
        backend with numpy this decodes every arena of the sketch with
        a single application of the slab kernel — the fastest way to
        materialize the full distinct-sample hierarchy (diagnostics,
        benchmarks, exhaustive queries); elsewhere it degrades to the
        per-level scalar scan with identical results.  Observability
        counters receive the same per-level increments as ``num_levels``
        individual :meth:`get_dsample` calls.
        """
        with trace_span("sketch.dsample_sweep", metric=SKETCH_SWEEP_DURATION):
            levels = list(range(self.params.num_levels))
            if not self._slab_decode_ready():
                return {
                    level: self.get_dsample(level) for level in levels
                }
            decoded = self._decode_levels(levels)
            sweep: Dict[int, Set[int]] = {}
            for level in levels:
                sample, recovered, collisions = decoded[level]
                self._record_dsample_obs(level, recovered, collisions)
                sweep[level] = sample
            return sweep

    def get_dsample(self, level: int) -> Set[int]:
        """The paper's ``GetdSample``: all singleton pairs at ``level``.

        Decodes every occupied second-level bucket of the level across
        all ``r`` inner tables; duplicates (a pair singleton in several
        tables) collapse in the returned set.  Delegates to
        :meth:`get_dsample_batch`, which evaluates whole slabs at once
        on the packed backend and falls back to the scalar decode
        elsewhere — the answer is identical either way.
        """
        return self.get_dsample_batch(level)

    def active_levels(self) -> int:
        """Number of first-level buckets currently holding any state."""
        return sum(
            1
            for level_tables in self._tables
            if any(level_tables[j] for j in range(self.params.r))
        )

    @property
    def is_empty(self) -> bool:
        """True when the sketch holds no state at all."""
        return all(
            not table for level in self._tables for table in level
        )

    # -- estimation (Section 4) ----------------------------------------------

    def collect_distinct_sample(
        self, epsilon: float = DEFAULT_EPSILON
    ) -> Tuple[Set[int], int, float]:
        """Walk levels top-down building the distinct sample (Fig 3, 1-7).

        Returns ``(sample, stop_level, target_size)`` where ``sample`` is
        a set of encoded pairs recovered from levels ``>= stop_level``.
        """
        target = self.params.sample_target(epsilon)
        sample: Set[int] = set()
        stop_level = 0
        if self._slab_decode_ready():
            # Decode every slab of the sketch with one kernel pass, then
            # replay the top-down walk over the per-level results.  The
            # walk may stop before consuming all levels — identical to
            # the scalar walk, which never decodes below its stop level;
            # the speculative decode of the lower levels costs a few
            # vectorized passes and keeps the whole query one kernel
            # application.  Observability records visited levels only,
            # exactly as the scalar walk does.
            order = list(range(self.params.num_levels - 1, -1, -1))
            decoded = self._decode_levels(order)
            for offset, level in enumerate(order):
                level_sample, recovered, collisions = decoded[offset]
                sample |= level_sample
                self._record_dsample_obs(level, recovered, collisions)
                stop_level = level
                if len(sample) >= target:
                    break
        else:
            for level in range(self.params.num_levels - 1, -1, -1):
                sample |= self.get_dsample(level)
                stop_level = level
                if len(sample) >= target:
                    break
        self._obs_sample_size.observe(len(sample))
        return sample, stop_level, target

    def sample_destination_frequencies(
        self, sample: Set[int]
    ) -> Dict[int, int]:
        """Occurrence frequency ``f_v^s`` of each destination in a sample."""
        frequencies: Dict[int, int] = {}
        decode = self.domain.decode_pair
        for pair in sample:
            dest = decode(pair)[1]
            frequencies[dest] = frequencies.get(dest, 0) + 1
        return frequencies

    def base_topk(
        self, k: int, epsilon: float = DEFAULT_EPSILON
    ) -> TopKResult:
        """The BaseTopk estimator (Figure 3).

        Returns the ``k`` destinations with the highest sample
        frequencies, each with estimate ``2^b * f_v^s``.  Fewer than
        ``k`` entries are returned if the sample holds fewer
        destinations.
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        with trace_span("sketch.base_topk"):
            self._obs_queries.labels(kind="base_topk").inc()
            sample, stop_level, target = self.collect_distinct_sample(
                epsilon
            )
            frequencies = self.sample_destination_frequencies(sample)
            self._obs_topk_candidates.observe(len(frequencies))
            ranked = rank_frequencies(frequencies, k)
            return build_result(
                ranked=ranked,
                stop_level=stop_level,
                sample_size=len(sample),
                target_size=target,
            )

    def threshold_query(
        self, tau: int, epsilon: float = DEFAULT_EPSILON
    ) -> TopKResult:
        """All destinations with estimated frequency ``>= tau``.

        The Section 2 footnote-3 variant of the tracking problem: instead
        of a fixed ``k``, report every destination whose estimated
        distinct-source frequency reaches the threshold.
        """
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        self._obs_queries.labels(kind="threshold").inc()
        sample, stop_level, target = self.collect_distinct_sample(epsilon)
        frequencies = self.sample_destination_frequencies(sample)
        scale = 1 << stop_level
        ranked = rank_frequencies({
            dest: freq
            for dest, freq in frequencies.items()
            if scale * freq >= tau
        })
        return build_result(
            ranked=ranked,
            stop_level=stop_level,
            sample_size=len(sample),
            target_size=target,
        )

    def estimate_distinct_pairs(
        self, epsilon: float = DEFAULT_EPSILON
    ) -> int:
        """Estimate ``U``, the number of distinct active pairs.

        Uses the same distinct sample: ``U_hat = |sample| * 2^b``.
        """
        self._obs_queries.labels(kind="distinct_pairs").inc()
        sample, stop_level, _ = self.collect_distinct_sample(epsilon)
        return len(sample) << stop_level

    # -- merging and copying ---------------------------------------------------

    def compatible_with(self, other: "DistinctCountSketch") -> bool:
        """True when ``other`` has identical params and seed."""
        return self.params == other.params and self.seed == other.seed

    # linear: merge must stay an exact integer addition (RL013)
    def merge(self, other: "DistinctCountSketch") -> None:
        """Fold ``other`` into this sketch in place.

        Valid because the sketch is a linear transform of the stream:
        merging per-router sketches yields exactly the sketch of the
        interleaved streams (Figure 1's multiple update streams).
        """
        if not self.compatible_with(other):
            raise MergeError(
                "sketches must share params and seed to merge"
            )
        for level in range(self.params.num_levels):
            for j in range(self.params.r):
                mine = self._tables[level][j]
                theirs = other._tables[level][j]
                if isinstance(mine, SignatureArena):
                    # Arena accessors return signature *copies*, so merge
                    # through the in-place arena primitive instead.
                    for bucket, signature in theirs.items():
                        mine.merge_signature(bucket, signature)
                    continue
                for bucket, signature in theirs.items():
                    existing = mine.get(bucket)
                    if existing is None:
                        mine[bucket] = signature.copy()
                    else:
                        existing.merge(signature)
                        if existing.is_zero:
                            del mine[bucket]
        self.updates_processed += other.updates_processed
        self.net_total += other.net_total
        self._obs_merges.inc()

    # linear: delta folding must stay an exact integer addition (RL013)
    def apply_bucket_deltas(
        self, level: int, j: int, buckets: Any, rows: Any
    ) -> None:
        """Fold signed counter-delta rows into one inner table.

        ``buckets`` is an int64 ndarray of second-level bucket indices
        and ``rows`` the matching ``(len(buckets), pair_bits + 1)``
        int64 delta matrix (``SignatureArena.drain_deltas`` output
        reshaped).  Because the sketch is linear, adding another
        sketch's per-bucket counter deltas is exactly equivalent to
        having processed its updates here — the incremental-merge
        primitive behind ``ShardedSketch(transport="delta"|"shm")``.
        Buckets whose rows net to zero are pruned, and the tracking
        subclass maintains its sample state through the same scatter
        override the batch engine uses.  Does **not** adjust
        ``updates_processed``/``net_total`` (callers account for those
        from the transport's cumulative totals).

        Requires the packed backend and numpy (the transports that
        call this resolve only under the same conditions).
        """
        arenas = self._arenas
        if arenas is None or not HAVE_NUMPY:
            raise ParameterError(
                "apply_bucket_deltas requires backend='packed' and numpy"
            )
        if len(buckets) == 0:
            return
        store = arenas[level][j]
        slots = store.resolve_slots(buckets)
        touched = _np.unique(slots)
        self._scatter_into_store(level, store, slots, rows, touched)

    # linear: subtract must stay an exact integer subtraction (RL013)
    def subtract(self, other: "DistinctCountSketch") -> None:
        """Remove ``other``'s contribution from this sketch in place.

        The −1-multiplicity merge: because the sketch is a linear
        transform of the update stream, subtracting the sketch of a
        sub-stream leaves exactly the sketch of the remaining updates,
        bit-for-bit — as if the subtracted updates had never been seen.
        This is the expiry kernel behind
        :class:`repro.monitor.SlidingWindowSketch`: a closed sub-epoch
        sketch is merged out of the running window sum when it ages
        past the window horizon.

        When both sketches are packed (and numpy is present) each inner
        table is subtracted by negating ``other``'s exported counter
        rows and folding them through :meth:`apply_bucket_deltas`;
        otherwise the per-bucket signature path is used.  Both paths
        prune buckets that net to zero, so the result is structurally
        equal to a from-scratch sketch of the remaining stream.
        """
        if not self.compatible_with(other):
            raise MergeError(
                "sketches must share params and seed to subtract"
            )
        vectorized = (
            self._arenas is not None
            and other._arenas is not None
            and HAVE_NUMPY
        )
        for level in range(self.params.num_levels):
            for j in range(self.params.r):
                theirs = other._tables[level][j]
                if vectorized:
                    store = cast(SignatureArena, theirs)
                    buckets, rows = store.export_rows()
                    if len(buckets) == 0:
                        continue
                    bucket_ids = _np.frombuffer(buckets, dtype=_np.int64)
                    deltas = -_np.frombuffer(rows, dtype=_np.int64)
                    self.apply_bucket_deltas(
                        level,
                        j,
                        bucket_ids,
                        deltas.reshape(len(bucket_ids), store.stride),
                    )
                    continue
                mine = self._tables[level][j]
                if isinstance(mine, SignatureArena):
                    for bucket, signature in theirs.items():
                        mine.subtract_signature(bucket, signature)
                    continue
                for bucket, signature in theirs.items():
                    existing = mine.get(bucket)
                    if existing is None:
                        negated = CountSignature(self.params.pair_bits)
                        negated.subtract(signature)
                        if not negated.is_zero:
                            mine[bucket] = negated
                        continue
                    existing.subtract(signature)
                    if existing.is_zero:
                        del mine[bucket]
        self.updates_processed -= other.updates_processed
        self.net_total -= other.net_total
        self._obs_merges.inc()

    def copy(self) -> "DistinctCountSketch":
        """Return a deep, independent copy of this sketch.

        The copy is *not* attached to the original's observability
        registry (it would double every pull gauge); instrument a copy
        explicitly if needed.
        """
        clone = DistinctCountSketch(
            self.params, seed=self.seed, backend=self.backend
        )
        for level in range(self.params.num_levels):
            for j in range(self.params.r):
                store = self._tables[level][j]
                if isinstance(store, SignatureArena):
                    clone._tables[level][j] = store.copy()
                else:
                    clone._tables[level][j] = {
                        bucket: signature.copy()
                        for bucket, signature in store.items()
                    }
        if clone._arenas is not None:
            clone._arenas = [
                [cast(SignatureArena, store) for store in level_tables]
                for level_tables in clone._tables
            ]
        clone.updates_processed = self.updates_processed
        clone.net_total = self.net_total
        return clone

    def structurally_equal(self, other: "DistinctCountSketch") -> bool:
        """True when both sketches hold identical counter state.

        This is the delete-resilience test surface: a sketch that saw
        matched insert/delete pairs must be structurally equal to one
        that never saw them.
        """
        if not self.compatible_with(other):
            return False
        return self._tables == other._tables

    # -- space accounting (Section 6.1) ----------------------------------------

    def space_bytes(
        self, counter_bytes: int = 4, only_active_levels: bool = True
    ) -> int:
        """Model space usage per the paper's Section 6.1 accounting.

        Charges ``r * s * (2 log m + 1) * counter_bytes`` per first-level
        bucket, counting only non-empty levels by default (the paper's
        "approximately 23 non-empty buckets at U = 8e6").
        """
        levels = (
            self.active_levels() if only_active_levels else self.params.num_levels
        )
        return self.params.allocated_bytes(
            active_levels=levels, counter_bytes=counter_bytes
        )

    def occupied_buckets(self) -> int:
        """Number of second-level buckets currently holding state."""
        return sum(
            len(table) for level in self._tables for table in level
        )

    def __repr__(self) -> str:
        return (
            f"DistinctCountSketch(m={self.domain.m}, r={self.params.r}, "
            f"s={self.params.s}, levels={self.params.num_levels}, "
            f"updates={self.updates_processed})"
        )

    def _iter_signatures(
        self,
    ) -> Iterator[Tuple[int, int, int, CountSignature]]:
        """Yield ``(level, j, bucket, signature)`` for all occupied buckets."""
        for level, level_tables in enumerate(self._tables):
            for j, table in enumerate(level_tables):
                for bucket, signature in table.items():
                    yield level, j, bucket, signature
