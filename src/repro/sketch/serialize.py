"""Sketch serialization: ship synopses between routers and the monitor.

The Figure 1 deployment has per-router sketches travelling to a central
DDoS monitor for merging.  This module provides a compact, versioned,
dependency-free wire format:

* :func:`sketch_to_dict` / :func:`sketch_from_dict` — plain-dict codec
  (JSON-compatible) carrying parameters, seed, and only the *occupied*
  buckets (the sketch is sparse by construction).
* :func:`dumps` / :func:`loads` — JSON bytes on top of the dict codec.

Round-tripping preserves structural equality, so a deserialized sketch
merges and queries exactly like the original.  Tracking sketches rebuild
their incremental state (singleton sets, heaps) on load rather than
shipping it — the raw signatures fully determine it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from ..exceptions import ParameterError
from ..types import AddressDomain
from .dcs import DistinctCountSketch
from .params import SketchParams
from .signature import CountSignature
from .tracking import TrackingDistinctCountSketch

#: Format version written into every payload.
FORMAT_VERSION = 1

AnySketch = Union[DistinctCountSketch, TrackingDistinctCountSketch]


def sketch_to_dict(sketch: AnySketch) -> Dict[str, Any]:
    """Encode a sketch (basic or tracking) as a JSON-compatible dict."""
    buckets: List[List[Any]] = []
    for level, j, bucket, signature in sketch._iter_signatures():
        buckets.append([level, j, bucket, signature.counter_values()])
    return {
        "format_version": FORMAT_VERSION,
        "kind": (
            "tracking"
            if isinstance(sketch, TrackingDistinctCountSketch)
            else "basic"
        ),
        "m": sketch.domain.m,
        "r": sketch.params.r,
        "s": sketch.params.s,
        "num_levels": sketch.params.num_levels,
        "sample_target_factor": sketch.params.sample_target_factor,
        "seed": sketch.seed,
        "updates_processed": sketch.updates_processed,
        "net_total": sketch.net_total,
        "buckets": buckets,
    }


def sketch_from_dict(
    payload: Dict[str, Any], *, backend: str = "reference"
) -> AnySketch:
    """Decode a sketch from :func:`sketch_to_dict` output.

    ``backend`` selects the storage backend of the reconstructed sketch
    (the wire format is backend-agnostic — both backends serialize to
    the same payload and load into either).
    """
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ParameterError(
            f"unsupported sketch format version: {version!r}"
        )
    kind = payload.get("kind")
    if kind not in ("basic", "tracking"):
        raise ParameterError(f"unknown sketch kind: {kind!r}")
    params = SketchParams(
        domain=AddressDomain(payload["m"]),
        r=payload["r"],
        s=payload["s"],
        num_levels=payload["num_levels"],
        sample_target_factor=payload["sample_target_factor"],
    )
    cls = (
        TrackingDistinctCountSketch if kind == "tracking"
        else DistinctCountSketch
    )
    sketch = cls(params, seed=payload["seed"], backend=backend)
    pair_bits = params.pair_bits
    for level, j, bucket, counters in payload["buckets"]:
        if not 0 <= level < params.num_levels or not 0 <= j < params.r:
            raise ParameterError(
                f"bucket coordinates ({level}, {j}) out of range"
            )
        if len(counters) != pair_bits + 1:
            raise ParameterError(
                f"count signature has {len(counters)} counters, "
                f"expected {pair_bits + 1}"
            )
        signature = CountSignature(pair_bits)
        signature.total = counters[0]
        signature.bit_counts = list(counters[1:])
        sketch._tables[level][j][bucket] = signature
    sketch.updates_processed = payload["updates_processed"]
    sketch.net_total = payload["net_total"]
    if isinstance(sketch, TrackingDistinctCountSketch):
        sketch._rebuild_tracking_state()
    return sketch


def dumps(sketch: AnySketch) -> bytes:
    """Serialize a sketch to JSON bytes."""
    return json.dumps(
        sketch_to_dict(sketch), separators=(",", ":")
    ).encode("ascii")


def loads(data: bytes, *, backend: str = "reference") -> AnySketch:
    """Deserialize a sketch from :func:`dumps` output.

    ``backend`` selects the storage backend of the loaded sketch; see
    :func:`sketch_from_dict`.
    """
    try:
        payload = json.loads(data.decode("ascii"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ParameterError(f"malformed sketch payload: {error}") from error
    if not isinstance(payload, dict):
        raise ParameterError("sketch payload must be a JSON object")
    return sketch_from_dict(payload, backend=backend)
