"""Packed signature arenas: flat counter storage for the sketch hot path.

The reference store keeps one :class:`~repro.sketch.signature.CountSignature`
heap object (plus a boxed-int list) per occupied second-level bucket.
At line rate that object overhead dominates the ``O(r log m)`` counter
cost the paper promises (Section 3).  A :class:`SignatureArena` packs
every signature of one ``(level, table)`` pair into a single flat
``array('q')`` of stride ``pair_bits + 1``:

``[total, bit_0, ..., bit_{pair_bits-1}] [total, bit_0, ...] ...``

with a sparse ``bucket -> slot`` map on top and free-slot recycling when
a row nets back to zero (pruned rows are already all-zero, so recycled
slots need no clearing).  The layout is scatter-friendly: the batch
engine views the buffer as a ``(slots, stride)`` int64 matrix and
applies a whole batch with one ``np.add.at`` per touched arena.

The arena also quacks like the reference ``Dict[int, CountSignature]``
store — ``get``/``items``/``values``/``len``/``in``/``==`` and friends —
so ``structurally_equal``, ``serialize``, and ``debug`` work unchanged
across backends.  :class:`CountSignature` remains the interchange type:
every accessor returns an independent copy, never a view into the
buffer.

Counters are 64-bit here versus unbounded ints in the reference store;
they saturate only beyond ``2^63 - 1`` net occurrences of one bucket,
far past any feasible stream (``array('q')`` raises ``OverflowError``
rather than wrapping, so even that cannot corrupt state silently).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .._accel import HAVE_NUMPY
from .._accel import np as _np
from ..exceptions import MergeError, ParameterError
from ..obs.trace import span as trace_span
from .signature import CountSignature

#: Largest second-level range for which a dense bucket -> slot index is
#: kept (8 bytes per bucket; beyond this the sparse dict is used).
MAX_DENSE_RANGE = 65536


def singleton_mask(matrix: Any) -> Tuple[Any, Any]:  # hot-path
    """The slab-decode kernel: ``ReturnSingleton`` over whole matrices.

    ``matrix`` is a ``(rows, stride)`` counter matrix of any integer
    dtype with the totals in column 0.  Evaluates the paper's singleton
    predicate for every row at once — a row is a singleton iff its
    total is positive and each bit counter is either 0 or equal to the
    total — and returns ``(ok, ne)``: the bool singleton mask and the
    full ``counter != total`` comparison, whose negated columns ``1:``
    are the decoded pair bits of each row (callers negate only the rows
    they decode).  All-zero (freed) rows come out not-ok, so full arena
    buffers can be decoded without masking out recycled slots first.
    """
    ne = matrix != matrix[:, :1]
    bad = matrix != 0
    # Column 0 of bad self-cancels (total != total is never true), so
    # the row-wise any() needs no column slicing.
    _np.logical_and(bad, ne, out=bad)
    ok = ~bad.any(axis=1)
    _np.logical_and(ok, matrix[:, 0] > 0, out=ok)
    return ok, ne


def pack_codes(eq_bits: Any) -> Any:  # hot-path
    """Reassemble uint64 pair codes from a ``(rows, pair_bits)`` bit mask.

    Bit ``i`` of row ``r``'s code is set iff ``eq_bits[r, i]`` — the
    vectorized form of the scalar decoder's ``code |= 1 << i``.  Only
    valid for ``pair_bits <= 64`` (callers gate wider domains to the
    scalar path).
    """
    width = eq_bits.shape[1]
    if width % 64:
        pad = _np.zeros((eq_bits.shape[0], 64 - width % 64), dtype=bool)
        eq_bits = _np.concatenate([eq_bits, pad], axis=1)
    packed = _np.packbits(eq_bits, axis=1, bitorder="little")
    return packed.view(_np.dtype("<u8")).reshape(-1)


class SignatureArena:
    """Packed :class:`CountSignature` storage for one ``(level, table)``.

    Args:
        pair_bits: width of the pair encoding (``2 log2 m``); each slot
            holds ``pair_bits + 1`` counters (total first).
        range_size: the second-level hash range ``s`` (bucket indices
            are validated against it only through the dense index size).
    """

    __slots__ = (
        "pair_bits", "stride", "range_size",
        "_buf", "_slots", "_bucket_of", "_free", "_zeros", "_dense",
        "_view", "_dirty",
    )

    def __init__(self, pair_bits: int, range_size: int) -> None:
        if pair_bits < 1:
            raise ParameterError(f"pair_bits must be >= 1, got {pair_bits}")
        if range_size < 1:
            raise ParameterError(
                f"range_size must be >= 1, got {range_size}"
            )
        self.pair_bits = pair_bits
        #: Counters per slot: the total plus one per pair bit.
        self.stride = pair_bits + 1
        self.range_size = range_size
        self._buf = array("q")
        #: bucket -> slot for every occupied bucket.
        self._slots: Dict[int, int] = {}
        #: slot -> bucket (-1 for free slots); kept for O(1) pruning.
        self._bucket_of: List[int] = []
        #: Recycled slot indices (their rows are all-zero by invariant).
        self._free: List[int] = []
        # Reused zero row so growth never allocates a fresh list.
        self._zeros = array("q", bytes(8 * self.stride))
        self._dense: Any = None
        if HAVE_NUMPY and range_size <= MAX_DENSE_RANGE:
            self._dense = _np.full(range_size, -1, dtype=_np.int64)
        # Cached buffer view (see view2d); dropped before any growth.
        self._view: Any = None
        # Dirty-bucket index for delta propagation (None = tracking
        # off): bucket -> the row's counter values at the moment the
        # bucket was first touched after the last drain (its baseline).
        self._dirty: Optional[Dict[int, List[int]]] = None

    # -- slot management -----------------------------------------------------

    def _allocate(self, bucket: int) -> int:  # hot-path
        """Bind ``bucket`` to a zeroed slot (recycled or fresh)."""
        free = self._free
        if free:
            slot = free.pop()
            self._bucket_of[slot] = bucket
        else:
            slot = len(self._buf) // self.stride
            # Release the cached view's buffer export first: ``array``
            # refuses to resize while a view holds its memory.
            self._view = None
            self._buf.extend(self._zeros)
            self._bucket_of.append(bucket)
        self._slots[bucket] = slot
        if self._dense is not None:
            self._dense[bucket] = slot
        return slot

    def _release(self, bucket: int, slot: int) -> None:  # hot-path
        """Unbind an all-zero slot and queue it for reuse."""
        del self._slots[bucket]
        self._bucket_of[slot] = -1
        if self._dense is not None:
            self._dense[bucket] = -1
        self._free.append(slot)

    # -- delta propagation (dirty-bucket tracking) ----------------------------

    def track_deltas(self, enabled: bool = True) -> None:
        """Switch dirty-bucket tracking on or off.

        While enabled, every mutation records the touched bucket's
        *baseline* (its counter row before the first touch since the
        last drain), so :meth:`drain_deltas` can ship exact signed
        counter deltas instead of full state.  Off by default: only
        delta-transport shard workers pay the bookkeeping.
        """
        if enabled:
            if self._dirty is None:
                self._dirty = {}
        else:
            self._dirty = None

    def reset_deltas(self) -> None:
        """Forget all recorded baselines (a full sync just shipped)."""
        if self._dirty is not None:
            self._dirty.clear()

    def _note_bucket(self, dirty: Dict[int, List[int]], bucket: int) -> None:
        """Record ``bucket``'s baseline row on first touch since drain."""
        if bucket in dirty:
            return
        slot = self._slots.get(bucket)
        if slot is None:
            dirty[bucket] = self._zeros.tolist()
        else:
            base = slot * self.stride
            dirty[bucket] = self._buf[base:base + self.stride].tolist()

    def note_touched(self, touched: Any) -> None:
        """Record baselines for a batch scatter's touched slots.

        Called by the batch engine *after* slot resolution and *before*
        the ``np.add.at`` scatter, so every baseline is the
        pre-mutation image.  ``touched`` holds distinct occupied slot
        indices (``np.unique`` output).  No-op unless tracking is on.
        """
        dirty = self._dirty
        if dirty is None:
            return
        bucket_of = self._bucket_of
        buf = self._buf
        stride = self.stride
        for slot in touched.tolist():
            bucket = bucket_of[slot]
            if bucket not in dirty:
                base = slot * stride
                dirty[bucket] = buf[base:base + stride].tolist()

    # linear: delta extraction is exact counter subtraction (RL013)
    def drain_deltas(self) -> Tuple[Any, Any]:
        """Extract and clear the signed counter deltas since last drain.

        Returns ``(buckets, rows)`` as flat ``array('q')`` runs:
        ``rows`` holds one ``stride``-wide delta row per bucket, where
        each delta is the bucket's current counter minus its recorded
        baseline (zeros for buckets that were empty, or that have been
        freed, at either end).  Buckets whose deltas net to zero are
        skipped entirely — a touched-then-reverted bucket costs no
        wire bytes.  Linearity makes folding these rows into another
        sketch by addition exact (Section 3).
        """
        buckets_out = array("q")
        rows_out = array("q")
        dirty = self._dirty
        if not dirty:
            return buckets_out, rows_out
        buf = self._buf
        stride = self.stride
        slots = self._slots
        zeros = self._zeros
        for bucket, baseline in dirty.items():
            slot = slots.get(bucket)
            if slot is None:
                current = zeros
            else:
                base = slot * stride
                current = buf[base:base + stride]
            row = [now - then for now, then in zip(current, baseline)]
            if any(row):
                buckets_out.append(bucket)
                rows_out.extend(row)
        dirty.clear()
        return buckets_out, rows_out

    def export_rows(self) -> Tuple[Any, Any]:
        """Every occupied bucket's full counter row, as flat arrays.

        The full-resync form of :meth:`drain_deltas`: relative to an
        empty sketch the absolute rows *are* the deltas, so a parent
        can rebuild its running sum from scratch by folding these in.
        Does not touch the dirty index (callers pair this with
        :meth:`reset_deltas` when it marks a sync point).
        """
        buckets_out = array("q")
        rows_out = array("q")
        buf = self._buf
        stride = self.stride
        for bucket, slot in self._slots.items():
            base = slot * stride
            buckets_out.append(bucket)
            rows_out.extend(buf[base:base + stride])
        return buckets_out, rows_out

    # -- per-update fast path ------------------------------------------------

    def update(self, bucket: int, pair_code: int, delta: int) -> None:  # hot-path
        """Apply one stream update to ``bucket``, pruning zeroed rows.

        Mirrors ``CountSignature.update`` plus the store-level
        create-on-miss / delete-on-zero bookkeeping of the reference
        update loop, without materializing any signature object.
        """
        if pair_code >> self.pair_bits:
            raise ParameterError(
                f"pair code {pair_code} needs more than "
                f"{self.pair_bits} bits"
            )
        dirty = self._dirty
        if dirty is not None:
            self._note_bucket(dirty, bucket)
        slot = self._slots.get(bucket)
        if slot is None:
            slot = self._allocate(bucket)
        buf = self._buf
        base = slot * self.stride
        buf[base] += delta
        code = pair_code
        while code:
            low = code & -code
            buf[base + low.bit_length()] += delta
            code ^= low
        if buf[base] == 0:
            for offset in range(base + 1, base + self.stride):
                if buf[offset]:
                    return
            self._release(bucket, slot)

    def singleton_at(self, bucket: int) -> Optional[int]:  # hot-path
        """Decode the bucket's unique pair code, or ``None``.

        The paper's ``ReturnSingleton`` test evaluated in place: the
        bucket is a singleton iff the total is positive and each bit
        count is either 0 or equal to the total.
        """
        slot = self._slots.get(bucket)
        if slot is None:
            return None
        buf = self._buf
        base = slot * self.stride
        total = buf[base]
        if total <= 0:
            return None
        code = 0
        for index in range(1, self.stride):
            count = buf[base + index]
            if count == total:
                code |= 1 << (index - 1)
            elif count != 0:
                return None
        return code

    def decode_occupied(self) -> Iterator[Optional[int]]:
        """Singleton decode (or ``None``) per occupied bucket, in place.

        One entry per occupied bucket, in slot-map order — the arena
        analogue of decoding every ``table.values()`` signature, without
        materializing any :class:`CountSignature`.
        """
        buf = self._buf
        stride = self.stride
        for slot in self._slots.values():
            base = slot * stride
            total = buf[base]
            if total <= 0:
                yield None
                continue
            code = 0
            singleton = True
            for index in range(1, stride):
                count = buf[base + index]
                if count == total:
                    code |= 1 << (index - 1)
                elif count != 0:
                    singleton = False
                    break
            yield code if singleton else None

    # -- batch engine surface (numpy required) -------------------------------

    def resolve_slots(self, buckets: Any) -> Any:  # hot-path
        """Slot index per bucket (int64 ndarray), allocating on miss.

        Allocation may grow (and therefore reallocate) the underlying
        buffer, so callers must create :meth:`view2d` only *after* this
        call.
        """
        if self._dense is not None:
            slots = self._dense[buckets]
            if bool((slots < 0).any()):
                dense = self._dense
                bucket_list = buckets.tolist()
                for position in _np.nonzero(slots < 0)[0].tolist():
                    bucket = bucket_list[position]
                    slot = int(dense[bucket])
                    if slot < 0:
                        slot = self._allocate(bucket)
                    slots[position] = slot
            return slots
        table = self._slots
        out = _np.empty(len(buckets), dtype=_np.int64)
        for position, bucket in enumerate(buckets.tolist()):
            slot = table.get(bucket)
            if slot is None:
                slot = self._allocate(bucket)
            out[position] = slot
        return out

    def view2d(self) -> Any:
        """Writable ``(slots, stride)`` int64 view of the raw buffer.

        The view is cached between calls (decode sweeps request many
        slab views back to back) and re-created after buffer growth.
        Invalidated by any later allocation (growth may move the
        buffer): create after :meth:`resolve_slots`, use, drop.
        """
        view = self._view
        if view is not None:
            return view
        if not self._buf:
            return _np.empty((0, self.stride), dtype=_np.int64)
        view = _np.frombuffer(self._buf, dtype=_np.int64).reshape(
            -1, self.stride
        )
        self._view = view
        return view

    def _decode_rows(self, slots: Any) -> Tuple[Any, Any]:  # hot-path
        """Singleton test over the given slot rows via the slab kernel.

        Returns ``(ok, codes)`` ndarrays: a bool singleton mask and the
        decoded uint64 pair code per row (meaningful only where
        ``ok``).
        """
        rows = self.view2d()[slots]
        ok, ne = singleton_mask(rows)
        return ok, pack_codes(~ne[:, 1:])

    def decode_slots_raw(self, slots: Any) -> Tuple[Any, Any]:  # hot-path
        """Vectorized singleton decode returning raw ``(ok, codes)``.

        The allocation-free variant of :meth:`decode_slots` for callers
        that diff decode states with numpy (the tracking batch engine):
        ``ok`` is a bool mask, ``codes`` the uint64 pair code per row.
        Zeroed (freed) rows decode to not-ok, so the same call serves
        as the before- and after-image of a batch scatter.
        """
        if len(slots) == 0:
            empty = _np.empty(0, dtype=_np.uint64)
            return empty.astype(bool), empty
        return self._decode_rows(slots)

    def decode_slots(self, slots: Any) -> List[Optional[int]]:  # hot-path
        """Vectorized singleton decode of the given slot rows.

        Zeroed (freed) rows decode to ``None``, so the same call serves
        as the before- and after-image of a batch scatter.
        """
        count = len(slots)
        if count == 0:
            return []
        ok, codes = self._decode_rows(slots)
        ok_list = ok.tolist()
        code_list = codes.tolist()
        out: List[Optional[int]] = []
        append = out.append
        for index in range(count):
            append(code_list[index] if ok_list[index] else None)
        return out

    def decode_slab(self) -> Tuple[List[int], int]:  # hot-path
        """Decode every occupied bucket of the arena in one pass.

        The whole-slab form of the paper's ``GetdSample`` inner loop:
        returns ``(singleton pair codes, collision count)`` over all
        occupied buckets.  With numpy (and a pair encoding that fits
        64 bits) the entire slab is evaluated by a single application
        of the vectorized singleton predicate; otherwise it falls back
        to the scalar per-bucket decode with identical results.
        """
        occupied = len(self._slots)
        if occupied == 0:
            return [], 0
        with trace_span("arena.decode_slab"):
            if not HAVE_NUMPY or self.pair_bits > 64:
                codes_out: List[int] = []
                append = codes_out.append
                for code in self.decode_occupied():
                    if code is not None:
                        append(code)
                return codes_out, occupied - len(codes_out)
            # Decode the full buffer, free rows included: all-zero rows
            # fail the singleton predicate, so no slot gather is needed.
            ok, ne = singleton_mask(self.view2d())
            index = _np.nonzero(ok)[0]
            recovered: List[int] = pack_codes(~ne[index, 1:]).tolist()
            return recovered, occupied - len(recovered)

    def free_zero_slots(self, touched: Any) -> None:  # hot-path
        """Release every touched slot whose row netted to all zeros.

        ``touched`` must hold distinct occupied slot indices (the batch
        engine passes ``np.unique`` output).
        """
        if len(touched) == 0:
            return
        rows = self.view2d()[touched]
        zero = ~rows.any(axis=1)
        if not bool(zero.any()):
            return
        bucket_of = self._bucket_of
        for slot in touched[zero].tolist():
            self._release(bucket_of[slot], slot)

    # -- merge / interchange -------------------------------------------------

    # linear: merge must stay an exact integer addition (RL013)
    def merge_signature(self, bucket: int, signature: CountSignature) -> None:
        """Fold a signature's counters into ``bucket`` (pruning on zero)."""
        if signature.pair_bits != self.pair_bits:
            raise MergeError(
                f"cannot merge signatures of widths {self.pair_bits} "
                f"and {signature.pair_bits}"
            )
        dirty = self._dirty
        if dirty is not None:
            self._note_bucket(dirty, bucket)
        slot = self._slots.get(bucket)
        if slot is None:
            slot = self._allocate(bucket)
        buf = self._buf
        base = slot * self.stride
        buf[base] += signature.total
        counts = signature.bit_counts
        for index in range(self.pair_bits):
            buf[base + 1 + index] += counts[index]
        if buf[base] == 0:
            for offset in range(base + 1, base + self.stride):
                if buf[offset]:
                    return
            self._release(bucket, slot)

    # linear: subtract must stay an exact integer subtraction (RL013)
    def subtract_signature(self, bucket: int, signature: CountSignature) -> None:
        """Subtract a signature's counters from ``bucket`` (pruning on zero)."""
        if signature.pair_bits != self.pair_bits:
            raise MergeError(
                f"cannot subtract signatures of widths {self.pair_bits} "
                f"and {signature.pair_bits}"
            )
        dirty = self._dirty
        if dirty is not None:
            self._note_bucket(dirty, bucket)
        slot = self._slots.get(bucket)
        if slot is None:
            slot = self._allocate(bucket)
        buf = self._buf
        base = slot * self.stride
        buf[base] -= signature.total
        counts = signature.bit_counts
        for index in range(self.pair_bits):
            buf[base + 1 + index] -= counts[index]
        if buf[base] == 0:
            for offset in range(base + 1, base + self.stride):
                if buf[offset]:
                    return
            self._release(bucket, slot)

    def _row(self, slot: int) -> List[int]:
        """The raw counter row of ``slot`` as a list of ints."""
        base = slot * self.stride
        return self._buf[base:base + self.stride].tolist()

    def _signature_for(self, slot: int) -> CountSignature:
        """An independent :class:`CountSignature` copy of ``slot``."""
        row = self._row(slot)
        signature = CountSignature(self.pair_bits)
        signature.total = row[0]
        signature.bit_counts = row[1:]
        return signature

    def copy(self) -> "SignatureArena":
        """Deep, independent copy of this arena (same slot layout)."""
        clone = SignatureArena(self.pair_bits, self.range_size)
        clone._buf = array("q", self._buf)
        clone._slots = dict(self._slots)
        clone._bucket_of = list(self._bucket_of)
        clone._free = list(self._free)
        if self._dense is not None and clone._dense is not None:
            clone._dense = self._dense.copy()
        return clone

    # -- dict-compatible mapping surface -------------------------------------

    def get(
        self, bucket: int, default: Optional[CountSignature] = None
    ) -> Optional[CountSignature]:
        """The bucket's signature (a copy), or ``default`` if empty."""
        slot = self._slots.get(bucket)
        if slot is None:
            return default
        return self._signature_for(slot)

    def __getitem__(self, bucket: int) -> CountSignature:
        slot = self._slots.get(bucket)
        if slot is None:
            raise KeyError(bucket)
        return self._signature_for(slot)

    def __setitem__(self, bucket: int, signature: CountSignature) -> None:
        if signature.pair_bits != self.pair_bits:
            raise ParameterError(
                f"signature width {signature.pair_bits} does not match "
                f"arena width {self.pair_bits}"
            )
        dirty = self._dirty
        if dirty is not None:
            self._note_bucket(dirty, bucket)
        if signature.is_zero:
            # Keep the store invariant: absent always means empty.
            if bucket in self._slots:
                del self[bucket]
            return
        slot = self._slots.get(bucket)
        if slot is None:
            slot = self._allocate(bucket)
        buf = self._buf
        base = slot * self.stride
        buf[base] = signature.total
        counts = signature.bit_counts
        for index in range(self.pair_bits):
            buf[base + 1 + index] = counts[index]

    def __delitem__(self, bucket: int) -> None:
        slot = self._slots.get(bucket)
        if slot is None:
            raise KeyError(bucket)
        dirty = self._dirty
        if dirty is not None:
            self._note_bucket(dirty, bucket)
        buf = self._buf
        base = slot * self.stride
        for offset in range(base, base + self.stride):
            buf[offset] = 0
        self._release(bucket, slot)

    def __contains__(self, bucket: object) -> bool:
        return bucket in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    def __bool__(self) -> bool:
        return bool(self._slots)

    def __iter__(self) -> Iterator[int]:
        return iter(self._slots)

    def keys(self) -> Iterator[int]:
        """Occupied bucket indices."""
        return iter(self._slots)

    def values(self) -> Iterator[CountSignature]:
        """Signature copies of every occupied bucket."""
        for slot in self._slots.values():
            yield self._signature_for(slot)

    def items(self) -> Iterator[Tuple[int, CountSignature]]:
        """``(bucket, signature copy)`` pairs for every occupied bucket."""
        for bucket, slot in self._slots.items():
            yield bucket, self._signature_for(slot)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SignatureArena):
            if (
                self.pair_bits != other.pair_bits
                or len(self._slots) != len(other._slots)
            ):
                return False
            theirs = other._slots
            for bucket, slot in self._slots.items():
                other_slot = theirs.get(bucket)
                if other_slot is None:
                    return False
                if self._row(slot) != other._row(other_slot):
                    return False
            return True
        if isinstance(other, dict):
            # Reflected comparison against the reference dict store:
            # dict.__eq__(arena) returns NotImplemented, so Python
            # retries here and structural equality spans backends.
            if len(self._slots) != len(other):
                return False
            for bucket, slot in self._slots.items():
                signature = other.get(bucket)
                if not isinstance(signature, CountSignature):
                    return False
                if signature.pair_bits != self.pair_bits:
                    return False
                row = self._row(slot)
                if signature.total != row[0] or signature.bit_counts != row[1:]:
                    return False
            return True
        return NotImplemented

    # Mutable container: never hashable.
    __hash__ = None  # type: ignore[assignment]

    # -- state interchange ----------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Slot state minus the cached buffer view.

        A pickled ``frombuffer`` view would come back as an independent
        copy — silently divergent from ``_buf`` — so the cache never
        crosses a serialization boundary.  The dirty-bucket index stays
        behind too: it describes a live transport session (baselines
        since one parent's last drain), meaningless to a restored copy.
        """
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in ("_view", "_dirty")
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._dirty = None
        for name, value in state.items():
            setattr(self, name, value)
        self._view = None

    def __repr__(self) -> str:
        return (
            f"SignatureArena(pair_bits={self.pair_bits}, "
            f"occupied={len(self._slots)}, "
            f"slots={len(self._bucket_of)})"
        )
