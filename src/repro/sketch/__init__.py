"""The paper's primary contribution: Distinct-Count Sketch synopses.

Three layers live here:

* :class:`CountSignature` — the per-bucket counter array (one total
  count plus one counter per bit of the pair encoding) that makes the
  sketch delete-resistant and lets singleton buckets be decoded
  (Section 3).
* :class:`DistinctCountSketch` — the basic two-level synopsis with the
  ``BaseTopk`` estimator (Sections 3-4).
* :class:`TrackingDistinctCountSketch` — the tracking variant that
  incrementally maintains the distinct sample, singleton counters, and
  per-level destination heaps so top-k queries cost ``O(k log m)``
  (Section 5).
"""

from .arena import SignatureArena, pack_codes, singleton_mask
from .dcs import DistinctCountSketch
from .estimate import TopKEntry, TopKResult, rank_frequencies
from .heap import IndexedMaxHeap
from .params import SketchParams
from .sharded import ShardedSketch
from .signature import CountSignature
from .tracking import TrackingDistinctCountSketch
from . import debug, serialize

__all__ = [
    "CountSignature",
    "DistinctCountSketch",
    "IndexedMaxHeap",
    "ShardedSketch",
    "SignatureArena",
    "SketchParams",
    "TopKEntry",
    "TopKResult",
    "TrackingDistinctCountSketch",
    "debug",
    "pack_codes",
    "rank_frequencies",
    "serialize",
    "singleton_mask",
]
