"""An indexed binary max-heap with in-place priority updates.

The tracking sketch's ``topDestHeap(b)`` structures (Section 5) must
support, besides ``deleteMax``, the operation "find the entry for
destination v and adjust its frequency by +/-1" (Figure 6, steps 11 and
21).  The standard-library ``heapq`` cannot do that in ``O(log n)``, so
we implement a classic binary heap with a key -> position index.

Keys must be hashable (for the position index) and totally ordered
(ties are broken by key order so the heap's pop order — and therefore
every top-k answer built on it — is deterministic for a given state);
priorities are integers (sample frequencies).
"""

from __future__ import annotations

from typing import Any, Dict, Generic, List, Protocol, Tuple, TypeVar

from ..exceptions import ReproError


class OrderedHashable(Protocol):
    """A key usable in the heap: hashable and totally ordered."""

    def __hash__(self) -> int:
        """Hash support (keys index the position table)."""
        ...

    def __lt__(self, other: Any) -> bool:
        """Strict less-than ordering (used for deterministic tiebreaks)."""
        ...


K = TypeVar("K", bound=OrderedHashable)


class HeapKeyError(ReproError, KeyError):
    """Raised when an operation references a key absent from the heap."""


class _Entry(Generic[K]):
    """One heap slot: a mutable priority attached to a fixed key."""

    __slots__ = ("priority", "key")

    def __init__(self, priority: int, key: K) -> None:
        self.priority = priority
        self.key = key


class IndexedMaxHeap(Generic[K]):
    """Binary max-heap over ``(priority, key)`` with an index on keys."""

    __slots__ = ("_entries", "_positions")

    def __init__(self) -> None:
        self._entries: List[_Entry[K]] = []
        self._positions: Dict[K, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._positions

    def __bool__(self) -> bool:
        return bool(self._entries)

    def priority(self, key: K) -> int:
        """Return the current priority of ``key``."""
        try:
            position = self._positions[key]
        except KeyError:
            raise HeapKeyError(f"key {key!r} not in heap") from None
        return self._entries[position].priority

    def insert(self, key: K, priority: int) -> None:
        """Insert a new key; raises if the key is already present."""
        if key in self._positions:
            raise HeapKeyError(f"key {key!r} already in heap")
        self._entries.append(_Entry(priority, key))
        position = len(self._entries) - 1
        self._positions[key] = position
        self._sift_up(position)

    def update(self, key: K, priority: int) -> None:
        """Set the priority of an existing key and restore heap order."""
        try:
            position = self._positions[key]
        except KeyError:
            raise HeapKeyError(f"key {key!r} not in heap") from None
        old_priority = self._entries[position].priority
        self._entries[position].priority = priority
        if priority > old_priority:
            self._sift_up(position)
        elif priority < old_priority:
            self._sift_down(position)

    def add_to(self, key: K, delta: int, *, remove_at_zero: bool = False) -> int:
        """Adjust ``key``'s priority by ``delta`` (inserting at ``delta``
        if absent) and return the new priority.

        This is exactly the Figure 6 heap operation: "find entry for
        destination v (or create one with f=0 if not already there),
        update frequency, and adjust the heap".  With
        ``remove_at_zero=True`` an entry whose priority reaches zero is
        dropped, keeping the heap tight.
        """
        if key in self._positions:
            new_priority = self.priority(key) + delta
            if remove_at_zero and new_priority == 0:
                self.remove(key)
            else:
                self.update(key, new_priority)
            return new_priority
        self.insert(key, delta)
        return delta

    def remove(self, key: K) -> int:
        """Remove ``key``, returning its priority."""
        try:
            position = self._positions[key]
        except KeyError:
            raise HeapKeyError(f"key {key!r} not in heap") from None
        priority = self._entries[position].priority
        self._swap_with_last_and_pop(position)
        return priority

    def peek(self) -> Tuple[K, int]:
        """Return ``(key, priority)`` of the maximum without removing it."""
        if not self._entries:
            raise HeapKeyError("peek on empty heap")
        top = self._entries[0]
        return top.key, top.priority

    def pop(self) -> Tuple[K, int]:
        """Remove and return the maximum ``(key, priority)`` (deleteMax)."""
        if not self._entries:
            raise HeapKeyError("pop on empty heap")
        top = self._entries[0]
        key, priority = top.key, top.priority
        self._swap_with_last_and_pop(0)
        return key, priority

    def top_k(self, k: int) -> List[Tuple[K, int]]:
        """Return the ``k`` largest entries without mutating the heap.

        Implemented as k ``deleteMax`` operations followed by
        re-insertion, matching the paper's TrackTopk usage while keeping
        the synopsis intact for subsequent queries.
        """
        count = min(k, len(self._entries))
        popped = [self.pop() for _ in range(count)]
        for key, priority in popped:
            self.insert(key, priority)
        return popped

    def items(self) -> List[Tuple[K, int]]:
        """All ``(key, priority)`` pairs in arbitrary (heap) order."""
        return [(entry.key, entry.priority) for entry in self._entries]

    def check_invariants(self) -> None:
        """Assert heap order and index consistency (used by tests)."""
        for position, entry in enumerate(self._entries):
            if self._positions[entry.key] != position:
                raise AssertionError(
                    f"position index stale for key {entry.key!r}"
                )
            parent = (position - 1) // 2
            if position > 0 and self._less(
                self._entries[parent], self._entries[position]
            ):
                raise AssertionError(
                    f"heap order violated at position {position}"
                )
        if len(self._positions) != len(self._entries):
            raise AssertionError("position index size mismatch")

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _less(a: "_Entry[K]", b: "_Entry[K]") -> bool:
        """Max-heap ordering: priority first, key as deterministic tiebreak."""
        if a.priority != b.priority:
            return a.priority < b.priority
        # Invert key order so smaller keys win ties at the top.
        return b.key < a.key

    def _swap(self, i: int, j: int) -> None:
        entries = self._entries
        entries[i], entries[j] = entries[j], entries[i]
        self._positions[entries[i].key] = i
        self._positions[entries[j].key] = j

    def _swap_with_last_and_pop(self, position: int) -> None:
        last = len(self._entries) - 1
        if position != last:
            self._swap(position, last)
        removed = self._entries.pop()
        del self._positions[removed.key]
        if position <= last - 1 and self._entries:
            position = min(position, len(self._entries) - 1)
            self._sift_down(position)
            self._sift_up(position)

    def _sift_up(self, position: int) -> None:
        entries = self._entries
        while position > 0:
            parent = (position - 1) // 2
            if self._less(entries[parent], entries[position]):
                self._swap(parent, position)
                position = parent
            else:
                break

    def _sift_down(self, position: int) -> None:
        entries = self._entries
        size = len(entries)
        while True:
            left = 2 * position + 1
            right = left + 1
            largest = position
            if left < size and self._less(entries[largest], entries[left]):
                largest = left
            if right < size and self._less(entries[largest], entries[right]):
                largest = right
            if largest == position:
                break
            self._swap(position, largest)
            position = largest

    def __repr__(self) -> str:
        return f"IndexedMaxHeap(size={len(self._entries)})"
