"""Sketch parameterization: practical defaults and the paper's theory.

A Distinct-Count Sketch is shaped by three numbers:

* ``num_levels`` — first-level buckets, ``Theta(log m)`` over the pair
  domain ``[m^2]``; we default to ``2 log2 m + 1`` so the geometric hash
  covers the whole pair domain.
* ``r`` — independent second-level hash tables per first-level bucket.
* ``s`` — buckets per second-level table.

Theorem 4.4 sizes ``r = Theta(log(n / delta))`` and
``s = Theta(U log((n + log m) / delta) / (f_vk * epsilon^2))`` for
provable (epsilon, delta) guarantees; :meth:`SketchParams.from_guarantees`
implements those formulas.  The paper's experiments (Section 6.1) use
the far smaller practical values ``r = 3``, ``s = 128``, which
:meth:`SketchParams.paper_defaults` reproduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ParameterError
from ..types import AddressDomain

#: The paper's hard requirement on the relative-error parameter.
MAX_EPSILON = 1.0 / 3.0

#: Sample-target factor written in Figure 3 step 3: (1 + eps) * s / 16.
PSEUDOCODE_TARGET_FACTOR = 1.0 / 16.0

#: Calibrated default: a target of ~(1 + eps) * s reproduces the
#: accuracy the paper *reports* in Figure 8 (see DESIGN.md section 5 —
#: the literal s/16 target yields a ~10-pair sample at s = 128, which
#: cannot achieve the reported 86%+ recall at k = 10).
DEFAULT_TARGET_FACTOR = 1.0


@dataclass(frozen=True)
class SketchParams:
    """Immutable shape of a Distinct-Count Sketch.

    Attributes:
        domain: the address domain ``[m]``.
        r: number of second-level hash tables per first-level bucket.
        s: number of buckets per second-level hash table.
        num_levels: number of first-level (geometric) buckets.
        sample_target_factor: the distinct-sample walk stops once the
            sample reaches ``(1 + eps) * s * sample_target_factor``
            pairs.  Figure 3 writes the factor as 1/16
            (:data:`PSEUDOCODE_TARGET_FACTOR`); the default of 1.0 is
            calibrated to reproduce the accuracy the paper reports.
    """

    domain: AddressDomain
    r: int = 3
    s: int = 128
    num_levels: int = 0  # 0 means "derive from the domain"
    sample_target_factor: float = DEFAULT_TARGET_FACTOR

    def __post_init__(self) -> None:
        if self.r < 1:
            raise ParameterError(f"r must be >= 1, got {self.r}")
        if self.s < 2:
            raise ParameterError(f"s must be >= 2, got {self.s}")
        if self.sample_target_factor <= 0:
            raise ParameterError(
                "sample_target_factor must be positive, got "
                f"{self.sample_target_factor}"
            )
        levels = self.num_levels or self.domain.pair_bits + 1
        if levels < 1:
            raise ParameterError(f"num_levels must be >= 1, got {levels}")
        object.__setattr__(self, "num_levels", levels)

    @property
    def pair_bits(self) -> int:
        """Bits per pair code (count-signature width minus the total)."""
        return self.domain.pair_bits

    @property
    def counters_per_bucket(self) -> int:
        """Counters per second-level bucket: total + one per pair bit."""
        return self.pair_bits + 1

    def sample_target(self, epsilon: float) -> float:
        """Distinct-sample size target for the Figure 3 walk.

        ``(1 + eps) * s * sample_target_factor`` — the literal
        pseudocode uses factor 1/16; see the class docstring.
        """
        validate_epsilon(epsilon)
        return (1.0 + epsilon) * self.s * self.sample_target_factor

    def signature_bytes(self, counter_bytes: int = 4) -> int:
        """Bytes per count signature under the paper's 4-byte counters."""
        return self.counters_per_bucket * counter_bytes

    def level_bytes(self, counter_bytes: int = 4) -> int:
        """Bytes per fully-allocated first-level bucket."""
        return self.r * self.s * self.signature_bytes(counter_bytes)

    def allocated_bytes(
        self, active_levels: int = 0, counter_bytes: int = 4
    ) -> int:
        """Total sketch bytes, per the paper's Section 6.1 accounting.

        The paper counts only *non-empty* first-level buckets (about
        ``log2 U`` of them); pass that count as ``active_levels``, or 0
        to charge for every level.
        """
        levels = active_levels or self.num_levels
        return levels * self.level_bytes(counter_bytes)

    @classmethod
    def paper_defaults(cls, domain: AddressDomain) -> "SketchParams":
        """The experimental configuration of Section 6.1: r=3, s=128."""
        return cls(domain=domain, r=3, s=128)

    @classmethod
    def pseudocode_faithful(
        cls, domain: AddressDomain, r: int = 3, s: int = 128
    ) -> "SketchParams":
        """Figure 3 taken literally: sample target ``(1 + eps) * s / 16``.

        Provided for completeness and for the ablation benchmark that
        documents the discrepancy between the pseudocode target and the
        accuracy reported in the paper's Figure 8.
        """
        return cls(
            domain=domain,
            r=r,
            s=s,
            sample_target_factor=PSEUDOCODE_TARGET_FACTOR,
        )

    @classmethod
    def from_guarantees(
        cls,
        domain: AddressDomain,
        epsilon: float,
        delta: float,
        stream_length: int,
        distinct_pairs: int,
        kth_frequency: int,
    ) -> "SketchParams":
        """Size a sketch per Theorem 4.4 for provable (eps, delta) bounds.

        Args:
            domain: the address domain ``[m]``.
            epsilon: target relative error, must be below 1/3.
            delta: failure probability, in (0, 1).
            stream_length: upper bound ``n`` on the number of updates.
            distinct_pairs: (estimate of) ``U``, the number of distinct
                active source-destination pairs.
            kth_frequency: (estimate of) ``f_vk``, the k-th largest
                distinct-source frequency.

        The constants follow Lemma 4.3: ``r = ceil(log2(n / delta))``
        and ``s = ceil(16 * ln((n + log2 m) / delta) * U /
        (f_vk * epsilon^2))``.
        """
        validate_epsilon(epsilon)
        if not 0.0 < delta < 1.0:
            raise ParameterError(f"delta must be in (0, 1), got {delta}")
        if stream_length < 1:
            raise ParameterError("stream_length must be >= 1")
        if distinct_pairs < 1:
            raise ParameterError("distinct_pairs must be >= 1")
        if kth_frequency < 1:
            raise ParameterError("kth_frequency must be >= 1")
        r = max(1, math.ceil(math.log2(stream_length / delta)))
        log_term = math.log(
            (stream_length + math.log2(domain.m)) / delta
        )
        s = math.ceil(
            16.0 * log_term * distinct_pairs
            / (kth_frequency * epsilon * epsilon)
        )
        return cls(domain=domain, r=r, s=max(2, s))


def validate_epsilon(epsilon: float) -> None:
    """Raise unless ``0 < epsilon < 1/3`` (required by Theorem 4.4)."""
    if not 0.0 < epsilon < MAX_EPSILON:
        raise ParameterError(
            f"epsilon must be in (0, 1/3), got {epsilon}"
        )
