"""Sketch introspection: what is actually inside a synopsis.

Development and teaching aids — none of this is on a hot path:

* :func:`level_occupancy` — per-level distinct buckets, singletons,
  and collisions, the histogram Figure 2 implies;
* :func:`bucket_report` — classify every occupied bucket;
* :func:`describe` — a multi-line human-readable summary of a sketch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .dcs import DistinctCountSketch


@dataclass(frozen=True)
class LevelStats:
    """Occupancy statistics for one first-level bucket.

    Attributes:
        level: the first-level bucket index.
        occupied_buckets: second-level buckets holding any state
            (summed over the r inner tables).
        singletons: buckets currently decodable to a single pair.
        collisions: occupied buckets holding >= 2 distinct pairs.
        total_count: net total of all signatures at this level.
    """

    level: int
    occupied_buckets: int
    singletons: int
    collisions: int
    total_count: int


def level_occupancy(sketch: DistinctCountSketch) -> List[LevelStats]:
    """Per-level occupancy of every non-empty level, top level last."""
    stats: List[LevelStats] = []
    for level in range(sketch.params.num_levels):
        occupied = 0
        singletons = 0
        collisions = 0
        total = 0
        for j in range(sketch.params.r):
            for signature in sketch._tables[level][j].values():
                occupied += 1
                total += signature.total
                if signature.recover_singleton() is not None:
                    singletons += 1
                else:
                    collisions += 1
        if occupied:
            stats.append(
                LevelStats(
                    level=level,
                    occupied_buckets=occupied,
                    singletons=singletons,
                    collisions=collisions,
                    total_count=total,
                )
            )
    return stats


def bucket_report(sketch: DistinctCountSketch) -> Dict[str, int]:
    """Counts of empty / singleton / collision buckets over the sketch.

    'empty' counts allocated-but-unused capacity: ``levels * r * s``
    minus the occupied buckets (the sparse layout never materializes
    them, but the paper's space model charges for them).
    """
    singletons = 0
    collisions = 0
    occupied = 0
    for _, _, _, signature in sketch._iter_signatures():
        occupied += 1
        if signature.recover_singleton() is not None:
            singletons += 1
        else:
            collisions += 1
    capacity = (
        sketch.params.num_levels * sketch.params.r * sketch.params.s
    )
    return {
        "capacity": capacity,
        "occupied": occupied,
        "empty": capacity - occupied,
        "singletons": singletons,
        "collisions": collisions,
    }


def describe(sketch: DistinctCountSketch) -> str:
    """A multi-line human-readable summary of the sketch's state."""
    lines = [repr(sketch)]
    report = bucket_report(sketch)
    lines.append(
        f"buckets: {report['occupied']}/{report['capacity']} occupied "
        f"({report['singletons']} singletons, "
        f"{report['collisions']} collisions)"
    )
    lines.append(
        f"model space: {sketch.space_bytes() / 1024:.0f} KiB over "
        f"{sketch.active_levels()} active levels"
    )
    for stats in level_occupancy(sketch):
        lines.append(
            f"  level {stats.level:2d}: "
            f"{stats.occupied_buckets:5d} occupied, "
            f"{stats.singletons:5d} singleton, "
            f"{stats.collisions:5d} colliding, "
            f"net count {stats.total_count}"
        )
    return "\n".join(lines)
