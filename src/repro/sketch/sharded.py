"""Sharded ingestion: scaling the monitor across workers.

At ISP volumes ("AT&T's IP backbone alone generates 500 GBytes of
NetFlow data per day", Section 2), one ingestion thread is not enough.
Because the sketch is a linear transform of the update multiset, the
stream can be *partitioned arbitrarily* across workers, each feeding a
private sketch, with the global answer obtained by merging — no
coordination, no locks, and bit-exact equivalence to a single sketch.

:class:`ShardedSketch` packages that pattern (synchronously — Python
threads would serialize on the GIL anyway; the point is the partition /
merge correctness, which carries over directly to a multi-process
deployment) with two partition policies:

* ``round-robin`` — maximal balance, any update anywhere (valid
  because of linearity);
* ``by-destination`` — all updates of a destination on one shard, the
  policy a real multi-process deployment would use so per-shard answers
  are themselves meaningful.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..exceptions import ParameterError
from ..hashing import TabulationHash, derive_seed
from ..obs.catalog import SHARDED_MERGES, SHARDED_SHARDS, SHARDED_UPDATES
from ..obs.registry import Registry, registry_or_null
from ..types import AddressDomain, FlowUpdate
from .estimate import TopKResult
from .params import SketchParams
from .tracking import TrackingDistinctCountSketch


class ShardedSketch:
    """A bank of tracking sketches fed by a partitioned stream.

    Args:
        domain: address domain.
        shards: number of partitions.
        policy: ``"round-robin"`` or ``"by-destination"``.
        seed: sketch seed — identical across shards so they merge.
        r, s: sketch shape.
        obs: optional :class:`~repro.obs.Registry`, shared with every
            shard sketch — per-sketch counters therefore aggregate
            across shards, and ``repro_sharded_updates_total{shard=i}``
            gives the per-shard load-balance breakdown.
    """

    def __init__(
        self,
        domain: AddressDomain,
        shards: int = 4,
        policy: str = "by-destination",
        seed: int = 0,
        r: int = 3,
        s: int = 128,
        obs: Optional[Registry] = None,
    ) -> None:
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if policy not in ("round-robin", "by-destination"):
            raise ParameterError(
                "policy must be 'round-robin' or 'by-destination', "
                f"got {policy!r}"
            )
        self.domain = domain
        self.policy = policy
        self.seed = seed
        self.params = SketchParams(domain, r=r, s=s)
        #: Observability registry (the null registry when ``obs=None``).
        self.obs: Registry = registry_or_null(obs)
        self._shards: List[TrackingDistinctCountSketch] = [
            TrackingDistinctCountSketch(self.params, seed=seed, obs=obs)
            for _ in range(shards)
        ]
        self._route = TabulationHash(
            range_size=shards, seed=derive_seed(seed, "shard-route")
        )
        self._cursor = 0
        shard_updates = self.obs.counter_from(SHARDED_UPDATES)
        self._obs_shard_updates = [
            shard_updates.labels(shard=str(index))
            for index in range(shards)
        ]
        self._obs_merges = self.obs.counter_from(SHARDED_MERGES)
        self.obs.gauge_from(SHARDED_SHARDS).set(shards)

    @property
    def num_shards(self) -> int:
        """Number of partitions."""
        return len(self._shards)

    def shard_for(self, update: FlowUpdate) -> int:
        """The shard index this update routes to."""
        if self.policy == "by-destination":
            return self._route(update.dest)
        index = self._cursor
        self._cursor = (self._cursor + 1) % len(self._shards)
        return index

    def process(self, update: FlowUpdate) -> None:
        """Route one update to its shard."""
        index = self.shard_for(update)
        self._shards[index].process(update)
        self._obs_shard_updates[index].inc()

    def process_stream(self, updates: Iterable[FlowUpdate]) -> int:
        """Route a whole stream; returns the update count."""
        count = 0
        for update in updates:
            self.process(update)
            count += 1
        return count

    def combined(self) -> TrackingDistinctCountSketch:
        """Merge all shards into one sketch (the global view).

        The result is bit-identical to a single sketch that processed
        the whole stream — the linearity guarantee.  The merged sketch
        is deliberately *not* attached to the shared registry (it is
        ephemeral and would double every pull gauge).
        """
        merged = TrackingDistinctCountSketch(self.params, seed=self.seed)
        for shard in self._shards:
            merged.merge(shard)
        self._obs_merges.inc(len(self._shards))
        return merged

    def track_topk(self, k: int) -> TopKResult:
        """Global top-k (merges shards; O(total sketch size))."""
        return self.combined().track_topk(k)

    def shard(self, index: int) -> TrackingDistinctCountSketch:
        """Direct access to one shard's sketch."""
        return self._shards[index]

    def shard_update_counts(self) -> List[int]:
        """Updates processed per shard (load-balance inspection)."""
        return [shard.updates_processed for shard in self._shards]

    def __repr__(self) -> str:
        return (
            f"ShardedSketch(shards={len(self._shards)}, "
            f"policy={self.policy!r})"
        )
