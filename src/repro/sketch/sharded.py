"""Sharded ingestion: scaling the monitor across workers.

At ISP volumes ("AT&T's IP backbone alone generates 500 GBytes of
NetFlow data per day", Section 2), one ingestion thread is not enough.
Because the sketch is a linear transform of the update multiset, the
stream can be *partitioned arbitrarily* across workers, each feeding a
private sketch, with the global answer obtained by merging — no
coordination, no locks, and bit-exact equivalence to a single sketch.

:class:`ShardedSketch` packages that pattern with two partition
policies:

* ``round-robin`` — maximal balance, any update anywhere (valid
  because of linearity);
* ``by-destination`` — all updates of a destination on one shard, the
  policy a real multi-process deployment would use so per-shard answers
  are themselves meaningful.

and two execution backends:

* ``sync`` — shard sketches live in-process and are updated inline
  (Python threads would serialize on the GIL anyway; this backend is
  about partition/merge correctness);
* ``process`` — each shard is a worker process holding a private
  sketch (:mod:`repro.sketch.process_pool`), fed in chunks over pipes.
  If a pool cannot be started on the platform the sketch silently
  degrades to ``sync`` (check the resolved :attr:`backend` attribute).

The process backend syncs shard state through one of three
*transports* (the ``transport=`` argument, resolved into the
:attr:`transport` attribute):

* ``"pipe"`` — the original snapshot path: every :meth:`combined`
  serializes each worker's whole sketch through its pipe and merges
  from scratch (O(sketch) per query, any ``sketch_backend``);
* ``"delta"`` — workers track the buckets touched since the last sync
  and ship only those signed counter deltas; the parent folds them
  into a *running* combined sketch by addition (linearity), making
  :meth:`combined` O(changed buckets) between queries.  Epoch-tagged
  replies detect missed syncs and trigger an exact full resync;
* ``"shm"`` — workers publish their packed arena slabs into
  ``multiprocessing.shared_memory`` and the parent gathers bucket
  state through numpy views of the mapped segments — no pickling.

``"auto"`` (the default) picks ``"delta"`` when the packed transports
are eligible (``sketch_backend="packed"``, numpy available, pair
domain ≤ 64 bits) and ``"pipe"`` otherwise.  All three transports are
bit-identical to a single-process sketch — the fuzz suite in
``tests/sketch/test_shard_transport.py`` proves it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .._accel import HAVE_NUMPY
from .._accel import np as _np
from ..exceptions import ParameterError
from ..hashing import TabulationHash, derive_seed
from ..obs.catalog import (
    SHARDED_DELTA_BYTES,
    SHARDED_FULL_RESYNCS,
    SHARDED_MERGES,
    SHARDED_SHARDS,
    SHARDED_SYNC_DURATION,
    SHARDED_UPDATES,
)
from ..obs.registry import Registry, registry_or_null
from ..obs.trace import current_tracer
from ..obs.trace import span as trace_span
from ..types import AddressDomain, FlowUpdate
from .estimate import TopKResult
from .params import SketchParams
from .process_pool import PoolUnavailable, ProcessShardPool, WorkerDied
from .serialize import loads as _loads
from .tracking import TrackingDistinctCountSketch

#: Valid values for the ``backend`` constructor argument.
SHARD_BACKENDS = ("sync", "process")

#: Valid values for the ``transport`` constructor argument.
SHARD_TRANSPORTS = ("auto", "pipe", "shm", "delta")

#: Chunk size used when a process-backed stream is fed without an
#: explicit ``batch_size`` (per-update pipe messages would dominate).
DEFAULT_PROCESS_BATCH = 1024


class ShardedSketch:
    """A bank of tracking sketches fed by a partitioned stream.

    Args:
        domain: address domain.
        shards: number of partitions.
        policy: ``"round-robin"`` or ``"by-destination"``.
        seed: sketch seed — identical across shards so they merge.
        r, s: sketch shape.
        obs: optional :class:`~repro.obs.Registry`, shared with every
            shard sketch — per-sketch counters therefore aggregate
            across shards, and ``repro_sharded_updates_total{shard=i}``
            gives the per-shard load-balance breakdown.  With the
            process backend only the router-level counters are visible
            (worker sketches live in other processes).
        backend: ``"sync"`` (default) or ``"process"``; see the module
            docstring.  The resolved value (after any fallback) is the
            :attr:`backend` attribute.
        sketch_backend: storage backend of every shard sketch —
            ``"reference"`` or ``"packed"``
            (see :class:`~repro.sketch.dcs.DistinctCountSketch`).
        transport: shard-sync protocol for the process backend —
            ``"auto"`` (default), ``"pipe"``, ``"shm"`` or ``"delta"``;
            see the module docstring.  Explicitly requesting a packed
            transport with an ineligible configuration (reference
            backend, no numpy, pair domain > 64 bits) or with
            ``backend="sync"`` raises :class:`ParameterError`; the
            resolved value is the :attr:`transport` attribute (``None``
            on the sync backend).
    """

    def __init__(
        self,
        domain: AddressDomain,
        shards: int = 4,
        policy: str = "by-destination",
        seed: int = 0,
        r: int = 3,
        s: int = 128,
        obs: Optional[Registry] = None,
        backend: str = "sync",
        sketch_backend: str = "reference",
        transport: str = "auto",
    ) -> None:
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if policy not in ("round-robin", "by-destination"):
            raise ParameterError(
                "policy must be 'round-robin' or 'by-destination', "
                f"got {policy!r}"
            )
        if backend not in SHARD_BACKENDS:
            raise ParameterError(
                f"backend must be one of {SHARD_BACKENDS}, got {backend!r}"
            )
        if transport not in SHARD_TRANSPORTS:
            raise ParameterError(
                f"transport must be one of {SHARD_TRANSPORTS}, "
                f"got {transport!r}"
            )
        self.domain = domain
        self.policy = policy
        self.seed = seed
        self.params = SketchParams(domain, r=r, s=s)
        self.sketch_backend = sketch_backend
        packed_eligible = (
            sketch_backend == "packed"
            and HAVE_NUMPY
            and self.params.pair_bits <= 64
        )
        if transport in ("shm", "delta") and not packed_eligible:
            raise ParameterError(
                f"transport={transport!r} requires "
                "sketch_backend='packed', numpy, and a pair domain of "
                "at most 64 bits"
            )
        if backend == "sync" and transport != "auto":
            raise ParameterError(
                f"transport={transport!r} requires backend='process' "
                "(the sync backend has no sync protocol)"
            )
        #: Observability registry (the null registry when ``obs=None``).
        self.obs: Registry = registry_or_null(obs)
        #: Resolved execution backend ("process" may degrade to "sync").
        self.backend = "sync"
        #: Resolved sync transport (None on the sync backend).
        self.transport: Optional[str] = None
        self._pool: Optional[ProcessShardPool] = None
        if backend == "process":
            if transport == "auto":
                resolved = "delta" if packed_eligible else "pipe"
            else:
                resolved = transport
            # Workers inherit tracing from whatever tracer is installed
            # at pool construction: only the sampling rate crosses the
            # process boundary (an int survives fork *and* spawn).
            tracer = current_tracer()
            trace_every = tracer.sample_every if tracer.enabled else 0
            try:
                self._pool = ProcessShardPool(
                    self.params,
                    seed,
                    shards,
                    sketch_backend,
                    trace_every=trace_every,
                    transport=resolved,
                )
                self.backend = "process"
                self.transport = resolved
            except PoolUnavailable:
                self._pool = None
        self._shards: List[TrackingDistinctCountSketch] = []
        if self._pool is None:
            self._shards = [
                TrackingDistinctCountSketch(
                    self.params, seed=seed, obs=obs, backend=sketch_backend
                )
                for _ in range(shards)
            ]
        self._num_shards = shards
        #: Router-side per-shard update tally (authoritative for the
        #: process backend, mirrors ``updates_processed`` for sync).
        self._shard_counts = [0] * shards
        self._route = TabulationHash(
            range_size=shards, seed=derive_seed(seed, "shard-route")
        )
        self._cursor = 0
        # combined() memoization: valid until the next update.
        self._combined_cache: Optional[TrackingDistinctCountSketch] = None
        # Delta transport: the running combined sum (survives updates —
        # only deltas since the last sync are folded in) and the last
        # sync epoch seen per shard (proves no drain was missed).
        self._running: Optional[TrackingDistinctCountSketch] = None
        self._sync_epochs = [0] * shards
        shard_updates = self.obs.counter_from(SHARDED_UPDATES)
        self._obs_shard_updates = [
            shard_updates.labels(shard=str(index))
            for index in range(shards)
        ]
        self._obs_merges = self.obs.counter_from(SHARDED_MERGES)
        self._obs_delta_bytes = self.obs.histogram_from(SHARDED_DELTA_BYTES)
        self._obs_full_resyncs = self.obs.counter_from(SHARDED_FULL_RESYNCS)
        self.obs.gauge_from(SHARDED_SHARDS).set(shards)

    @property
    def num_shards(self) -> int:
        """Number of partitions."""
        return self._num_shards

    def shard_for(self, update: FlowUpdate) -> int:
        """The shard index this update routes to."""
        if self.policy == "by-destination":
            return self._route(update.dest)
        index = self._cursor
        self._cursor = (self._cursor + 1) % self._num_shards
        return index

    def process(self, update: FlowUpdate) -> None:
        """Route one update to its shard."""
        self.ingest_shard(self.shard_for(update), [update])

    def ingest_shard(
        self, index: int, updates: Sequence[FlowUpdate]
    ) -> int:
        """Apply a pre-routed batch to one shard, bypassing routing.

        This is the primitive every ingest path (and the recovery
        replay in :mod:`repro.resilience.supervisor`) funnels through:
        it feeds the shard, maintains the per-shard tallies and
        observability counters, and invalidates the :meth:`combined`
        memo.  Returns the number of updates applied.

        Raises:
            WorkerDied: process backend, when the shard's worker pipe
                is broken (the caller may :meth:`restore_shard`).
        """
        group = list(updates)
        if not group:
            return 0
        if self._pool is not None:
            self._pool.ingest(
                index, [update.as_tuple() for update in group]
            )
        else:
            self._shards[index].update_batch(group)
        self._shard_counts[index] += len(group)
        self._obs_shard_updates[index].inc(len(group))
        self._combined_cache = None
        return len(group)

    def process_stream(
        self,
        updates: Iterable[FlowUpdate],
        batch_size: Optional[int] = None,
    ) -> int:
        """Route a whole stream; returns the update count.

        With ``batch_size`` set, updates are buffered into chunks of
        that size and routed through :meth:`update_batch`.  The process
        backend always chunks (``DEFAULT_PROCESS_BATCH`` when no size
        is given) — per-update pipe messages would swamp the workers.
        """
        if batch_size is None:
            if self._pool is None:
                count = 0
                for update in updates:
                    self.process(update)
                    count += 1
                return count
            batch_size = DEFAULT_PROCESS_BATCH
        if batch_size < 1:
            raise ParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        total = 0
        batch: List[FlowUpdate] = []
        append = batch.append
        for update in updates:
            append(update)
            if len(batch) >= batch_size:
                total += self.update_batch(batch)
                batch.clear()
        if batch:
            total += self.update_batch(batch)
        return total

    def update_batch(self, updates: Iterable[FlowUpdate]) -> int:
        """Route a batch of updates, one sub-batch per touched shard.

        Equivalent to calling :meth:`process` per update (routing uses
        the same per-update policy, so even the round-robin cursor
        advances identically), but each shard receives its whole
        sub-batch at once — one pipe message per shard on the process
        backend, one :meth:`~repro.sketch.dcs.DistinctCountSketch.
        update_batch` call per shard on the sync backend.  Returns the
        number of updates routed.
        """
        groups: List[List[FlowUpdate]] = [
            [] for _ in range(self._num_shards)
        ]
        shard_for = self.shard_for
        for update in updates:
            groups[shard_for(update)].append(update)
        count = 0
        for index, group in enumerate(groups):
            count += self.ingest_shard(index, group)
        return count

    def combined(self) -> TrackingDistinctCountSketch:
        """Merge all shards into one sketch (the global view).

        The result is bit-identical to a single sketch that processed
        the whole stream — the linearity guarantee.  The merged sketch
        is deliberately *not* attached to the shared registry (it is
        ephemeral and would double every pull gauge).

        The merge is memoized: repeated calls between updates return
        the *same* sketch object, so treat it as read-only (queries are
        fine — they never mutate sketch state).  Any routed update
        invalidates the cache.  On ``transport="delta"`` the returned
        object is additionally the *running* sum that later calls fold
        deltas into — successive calls may return the same (evolved)
        object; the read-only contract is the same.

        Raises:
            WorkerDied: process backend, when a worker died before
                answering the sync (callers may :meth:`restore_shard`
                and retry; no folded state is lost — the next delta
                sync re-reads absolute shard state).
        """
        if self._combined_cache is not None:
            return self._combined_cache
        if self._pool is not None and self.transport == "delta":
            merged = self._combined_delta()
        elif self._pool is not None and self.transport == "shm":
            merged = self._combined_shm()
        else:
            merged = TrackingDistinctCountSketch(
                self.params, seed=self.seed, backend=self.sketch_backend
            )
            if self._pool is not None:
                for payload in self._pool.snapshots():
                    merged.merge(
                        _loads(payload, backend=self.sketch_backend)
                    )
            else:
                for shard in self._shards:
                    merged.merge(shard)
        self._obs_merges.inc(self._num_shards)
        self._combined_cache = merged
        return merged

    def _combined_delta(self) -> TrackingDistinctCountSketch:
        """Sync the running combined sum via delta propagation.

        First sync (or after invalidation) collects absolute rows — a
        *full resync*; later syncs collect only the buckets each worker
        touched since its last drain.  Worker replies carry a per-shard
        epoch; any gap (a drain this parent never folded, e.g. an
        injected torn sync) discards the running sum and re-reads
        absolute state, so the fold can never silently diverge.
        """
        pool = self._pool
        assert pool is not None
        with trace_span("sharded.delta_sync", metric=SHARDED_SYNC_DURATION):
            running = self._running
            full = running is None
            try:
                replies = pool.collect_deltas(full=full)
                if not full and any(
                    reply["epoch"] != self._sync_epochs[shard] + 1
                    for shard, reply in enumerate(replies)
                ):
                    # Stale epoch: the incremental window is unusable
                    # (and already drained) — fall back to absolute.
                    full = True
                    replies = pool.collect_deltas(full=True)
            except WorkerDied:
                # Any reply already drained is lost with the pipe; the
                # running sum no longer matches the workers' dirty
                # indexes, so the next sync must re-read everything.
                self._running = None
                raise
            if full:
                running = TrackingDistinctCountSketch(
                    self.params, seed=self.seed, backend=self.sketch_backend
                )
                self._obs_full_resyncs.inc()
            assert running is not None
            stride = self.params.pair_bits + 1
            synced_bytes = 0
            for shard, reply in enumerate(replies):
                self._sync_epochs[shard] = reply["epoch"]
                for level, j, bucket_bytes, row_bytes in reply["arenas"]:
                    buckets = _np.frombuffer(bucket_bytes, dtype=_np.int64)
                    rows = _np.frombuffer(
                        row_bytes, dtype=_np.int64
                    ).reshape(len(buckets), stride)
                    running.apply_bucket_deltas(level, j, buckets, rows)
                    synced_bytes += len(bucket_bytes) + len(row_bytes)
            running.updates_processed = sum(
                reply["updates"] for reply in replies
            )
            running.net_total = sum(reply["net"] for reply in replies)
            self._obs_delta_bytes.observe(synced_bytes)
            self._running = running
        return running

    def _combined_shm(self) -> TrackingDistinctCountSketch:
        """Merge shard state gathered from shared-memory segments.

        Every sync asks each worker to publish its packed arena slabs
        into its segment, then folds the occupied bucket rows into a
        fresh combined sketch through numpy views of the mapped
        memory — no pickling, no per-bucket Python objects.  Memoized
        like every transport: repeated queries between updates reuse
        the merged sketch.
        """
        pool = self._pool
        assert pool is not None
        with trace_span("sharded.shm_sync", metric=SHARDED_SYNC_DURATION):
            merged = TrackingDistinctCountSketch(
                self.params, seed=self.seed, backend=self.sketch_backend
            )
            headers = pool.shm_sync()
            synced_bytes = 0
            for shard, header in enumerate(headers):
                for level, j, buckets, rows in pool.shm_arrays(
                    shard, header
                ):
                    merged.apply_bucket_deltas(level, j, buckets, rows)
                    synced_bytes += buckets.nbytes + rows.nbytes
            merged.updates_processed = sum(
                header["updates"] for header in headers
            )
            merged.net_total = sum(header["net"] for header in headers)
            self._obs_delta_bytes.observe(synced_bytes)
        return merged

    def track_topk(self, k: int) -> TopKResult:
        """Global top-k (merges shards, memoized; O(total sketch size))."""
        return self.combined().track_topk(k)

    def base_topk(self, k: int) -> TopKResult:
        """Global BaseTopk over the merged view (Figure 3 on the union).

        Identical to :meth:`track_topk`'s answer by the tracking
        consistency invariant, but runs the Figure 3 distinct-sample
        walk instead of reading tracked heaps — with
        ``sketch_backend="packed"`` that walk decodes whole slabs at a
        time (see ``docs/performance.md``).  Uses the same memoized
        merge as :meth:`track_topk`.
        """
        return self.combined().base_topk(k)

    def shard(self, index: int) -> TrackingDistinctCountSketch:
        """One shard's sketch: live for sync, a snapshot copy for process."""
        if self._pool is not None:
            sketch = _loads(
                self._pool.snapshot(index), backend=self.sketch_backend
            )
            assert isinstance(sketch, TrackingDistinctCountSketch)
            return sketch
        return self._shards[index]

    def shard_update_counts(self) -> List[int]:
        """Updates processed per shard (load-balance inspection)."""
        return list(self._shard_counts)

    # -- worker-side observability (process backend) -----------------------------

    def absorb_worker_obs(self) -> int:
        """Pull every worker's registry snapshot into this registry.

        Each worker keeps its own counters (``repro_worker_updates_total``
        labelled by shard); this fetches the cumulative snapshots over
        the pipe and absorbs them under stable keys (``shard-<i>``) via
        :meth:`repro.obs.Registry.absorb`.  Absorption *replaces* the
        previous contribution per key, so calling this repeatedly — or
        after a worker respawn rebuilt its counters from restored state
        — never double-counts.  Returns the number of snapshots
        absorbed (0 on the sync backend, where shard sketches already
        share the parent registry).

        Raises:
            WorkerDied: when any worker died before answering.
        """
        if self._pool is None:
            return 0
        snapshots = self._pool.obs_snapshots()
        for index, snapshot in enumerate(snapshots):
            self.obs.absorb(f"shard-{index}", snapshot)
        return len(snapshots)

    def drain_worker_traces(self) -> int:
        """Merge every worker's drained span buffer into the installed
        tracer (see :func:`repro.obs.trace.current_tracer`).

        Workers buffer spans locally; each call moves the buffered
        spans to the parent exactly once and returns how many arrived
        (0 on the sync backend, or when no tracer is installed to
        receive them — the null tracer drops merges).

        Raises:
            WorkerDied: when any worker died before answering.
        """
        tracer = current_tracer()
        if self._pool is None or not tracer.enabled:
            return 0
        spans = self._pool.drain_traces()
        tracer.extend(spans)
        return len(spans)

    # -- worker lifecycle (crash recovery surface) -------------------------------

    def worker_alive(self, index: int) -> bool:
        """Liveness of a shard's worker (always True on sync)."""
        if self._pool is not None:
            return self._pool.is_alive(index)
        return True

    def worker_pid(self, index: int) -> Optional[int]:
        """OS pid of a shard's worker process (None on sync) — the
        fault-injection surface :mod:`repro.resilience.faults` targets."""
        if self._pool is not None:
            return self._pool.pid(index)
        return None

    def restore_shard(
        self,
        index: int,
        payload: Optional[bytes] = None,
        processed_count: Optional[int] = None,
    ) -> None:
        """Replace one shard's sketch state (crash recovery).

        On the process backend the worker is respawned and, when
        ``payload`` (a :mod:`repro.sketch.serialize` snapshot) is
        given, restored from it; on the sync backend the in-process
        sketch is swapped.  ``processed_count`` resets the shard's
        update tally to what the restored state reflects (a recovery
        supervisor follows up with replayed updates, which re-count
        through :meth:`ingest_shard`).

        Restoring *always* invalidates the :meth:`combined` memo *and*
        the delta transport's running sum: a respawned or restored
        worker holds different state than the cached merge, even
        though no update was routed — the next sync re-reads absolute
        shard state (a full resync).

        Raises:
            PoolUnavailable: process backend, when the replacement
                worker cannot be started.
        """
        if self._pool is not None:
            self._pool.respawn(index, payload)
        else:
            if payload is not None:
                sketch = _loads(payload, backend=self.sketch_backend)
                assert isinstance(sketch, TrackingDistinctCountSketch)
            else:
                sketch = TrackingDistinctCountSketch(
                    self.params,
                    seed=self.seed,
                    backend=self.sketch_backend,
                )
            self._shards[index] = sketch
        if processed_count is not None:
            self._shard_counts[index] = processed_count
        self._combined_cache = None
        self._running = None

    def degrade_to_sync(
        self,
        payloads: Sequence[Optional[bytes]],
        processed_counts: Optional[Sequence[int]] = None,
    ) -> None:
        """Abandon the process backend: rebuild every shard in-process.

        ``payloads`` supplies one serialized snapshot per shard
        (``None`` entries start from an empty sketch — the caller is
        expected to replay their WAL tail afterwards), and
        ``processed_counts`` optionally resets the per-shard update
        tallies to match.  The worker pool is shut down and
        :attr:`backend` becomes ``"sync"``; the :meth:`combined` memo
        is invalidated.  No-op data-wise on an already-sync sketch
        (payloads are still applied).
        """
        if len(payloads) != self._num_shards:
            raise ParameterError(
                f"expected {self._num_shards} payloads, "
                f"got {len(payloads)}"
            )
        if processed_counts is not None and (
            len(processed_counts) != self._num_shards
        ):
            raise ParameterError(
                f"expected {self._num_shards} processed_counts, "
                f"got {len(processed_counts)}"
            )
        shards: List[TrackingDistinctCountSketch] = []
        for payload in payloads:
            if payload is not None:
                sketch = _loads(payload, backend=self.sketch_backend)
                assert isinstance(sketch, TrackingDistinctCountSketch)
            else:
                sketch = TrackingDistinctCountSketch(
                    self.params,
                    seed=self.seed,
                    backend=self.sketch_backend,
                )
            shards.append(sketch)
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._shards = shards
        if processed_counts is not None:
            self._shard_counts = list(processed_counts)
        self.backend = "sync"
        self.transport = None
        self._combined_cache = None
        self._running = None

    def close(self) -> None:
        """Shut down worker processes (no-op on the sync backend).

        On ``transport="shm"`` this also guarantees every shared-memory
        segment is unlinked — even when workers are already dead: the
        pool sweeps its unique segment-name prefix after the workers
        exit, and an ``atexit`` guard re-runs the sweep for pools that
        were never closed.  Idempotent, exception-safe (also invoked by
        ``__exit__`` and a GC finalizer).
        """
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ShardedSketch":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedSketch(shards={self._num_shards}, "
            f"policy={self.policy!r}, backend={self.backend!r})"
        )
