"""Command-line front end for reprolint.

Invoked either as ``python -m repro.lint`` or through the library CLI
as ``repro-ddos lint``.  Exit status is a contract CI scripts rely on:

* ``0`` — ran to completion, no error-severity violation;
* ``1`` — ran to completion, violations found;
* ``2`` — usage error (unknown rule, missing path, bad baseline);
* ``3`` — the analyzer itself crashed (a reprolint bug, not a finding).

Distinguishing 1 from 3 matters: a gate that treats "the linter blew
up" as "the code is dirty" hides linter regressions behind red builds,
and one that treats it as success silently stops linting.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import List, Optional

from .baseline import apply_baseline, read_baseline, write_baseline
from .cache import DEFAULT_CACHE_PATH, LintCache, ruleset_fingerprint
from .engine import LintRunner
from .reporters import (
    JsonReporter,
    Reporter,
    SarifReporter,
    TextReporter,
    rule_catalogue,
)

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2
EXIT_CRASH = 3


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Create (or extend) the argument parser for the lint command."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro.lint",
            description=(
                "AST-based invariant linter for the repro library "
                "(reproducibility, integer-counter, and API hygiene rules)"
            ),
        )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="RLxxx",
        help="run only these rules (repeatable)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RLxxx",
        help="shorthand for --select: run a single rule (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="RLxxx",
        help="skip these rules (repeatable)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help=(
            "incremental cache store "
            f"(default: {DEFAULT_CACHE_PATH}; see --no-cache)"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _reporter(fmt: str) -> Reporter:
    if fmt == "json":
        return JsonReporter()
    if fmt == "sarif":
        return SarifReporter()
    return TextReporter()


def run(args: argparse.Namespace) -> int:
    """Execute the lint command for parsed ``args``; returns exit status."""
    if args.list_rules:
        for rule in rule_catalogue():
            print(
                f"{rule['id']} [{rule['severity']}] {rule['title']}\n"
                f"    protects: {rule['invariant']}"
            )
        return EXIT_CLEAN
    select = list(args.select or []) + list(args.rule or [])
    try:
        runner = LintRunner(select=select or None, ignore=args.ignore)
    except KeyError as error:
        print(f"reprolint: {error.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    cache: Optional[LintCache] = None
    if not args.no_cache:
        cache_path = Path(args.cache or DEFAULT_CACHE_PATH)
        cache = LintCache.load(
            cache_path,
            ruleset_fingerprint([rule.rule_id for rule in runner.rules]),
        )
    try:
        violations = runner.run_paths(args.paths, cache=cache)
    except FileNotFoundError as error:
        print(f"reprolint: {error}", file=sys.stderr)
        return EXIT_USAGE
    except Exception:  # reprolint: disable=RL007
        # A rule or the engine crashed: that is a linter bug, not a
        # verdict about the linted code — report it distinguishably.
        print("reprolint: internal error", file=sys.stderr)
        traceback.print_exc()
        return EXIT_CRASH
    if args.write_baseline is not None:
        write_baseline(Path(args.write_baseline), violations)
        print(
            f"reprolint: wrote baseline with {len(violations)} "
            f"finding(s) to {args.write_baseline}"
        )
        return EXIT_CLEAN
    suppressed = 0
    if args.baseline is not None:
        try:
            counts = read_baseline(Path(args.baseline))
        except (OSError, ValueError) as error:
            print(f"reprolint: {error}", file=sys.stderr)
            return EXIT_USAGE
        violations, suppressed = apply_baseline(violations, counts)
    print(_reporter(args.format).render(violations))
    if suppressed and args.format == "text":
        print(f"reprolint: {suppressed} baselined finding(s) suppressed")
    return (
        EXIT_VIOLATIONS
        if LintRunner.error_count(violations)
        else EXIT_CLEAN
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    return run(build_parser().parse_args(argv))
