"""Command-line front end for reprolint.

Invoked either as ``python -m repro.lint`` or through the library CLI
as ``repro-ddos lint``.  Exit status: 0 when no error-severity
violation fired, 1 otherwise, 2 on usage errors — so the command slots
directly into CI.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .engine import LintRunner
from .reporters import JsonReporter, TextReporter, rule_catalogue


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Create (or extend) the argument parser for the lint command."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro.lint",
            description=(
                "AST-based invariant linter for the repro library "
                "(reproducibility, integer-counter, and API hygiene rules)"
            ),
        )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="RLxxx",
        help="run only these rules (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="RLxxx",
        help="skip these rules (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute the lint command for parsed ``args``; returns exit status."""
    if args.list_rules:
        for rule in rule_catalogue():
            print(
                f"{rule['id']} [{rule['severity']}] {rule['title']}\n"
                f"    protects: {rule['invariant']}"
            )
        return 0
    try:
        runner = LintRunner(select=args.select, ignore=args.ignore)
    except KeyError as error:
        print(f"reprolint: {error.args[0]}")
        return 2
    try:
        violations = runner.run_paths(args.paths)
    except FileNotFoundError as error:
        print(f"reprolint: {error}")
        return 2
    reporter = JsonReporter() if args.format == "json" else TextReporter()
    print(reporter.render(violations))
    return 1 if LintRunner.error_count(violations) else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    return run(build_parser().parse_args(argv))
