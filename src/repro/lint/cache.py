"""Content-hash incremental cache for reprolint runs.

A full-repo lint parses every file and — with the RL009-RL013 program
rules — builds a whole-program index and runs a dataflow analysis per
function.  That is fine cold, but CI and pre-commit hooks run the lint
on every push, and almost nothing changes between runs.  The cache
makes the warm path cheap with two keys:

* **local rules** (verdict depends on one file only) are keyed on the
  file's content hash;
* **cross-file rules** (``Rule.cross_file`` — re-export resolution,
  call-graph rules) are keyed on the file's content hash *and* the
  project hash, a digest over every ``(path, file_hash)`` pair in the
  run, so editing any file re-checks every file for those rules.

Both keys also fold in a ruleset fingerprint (rule ids + a version
stamp), so adding a rule or bumping :data:`CACHE_VERSION` invalidates
everything.  Inline pragmas are part of the file content, hence part of
the hash — caching pragma-filtered violations is sound.

The store is one JSON file, loaded and saved per run.  Corrupt or
version-mismatched stores are discarded silently: the cache must never
be able to break a lint run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import Severity, Violation

#: Bump when violation semantics change in a way hashes cannot see.
CACHE_VERSION = 1

DEFAULT_CACHE_PATH = ".reprolint_cache.json"


def file_digest(source: str) -> str:
    """Content hash of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def project_digest(file_hashes: Sequence[Tuple[str, str]]) -> str:
    """Digest over every ``(path, file_hash)`` pair of the run."""
    hasher = hashlib.sha256()
    for path, digest in sorted(file_hashes):
        hasher.update(path.encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(digest.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def ruleset_fingerprint(rule_ids: Sequence[str]) -> str:
    """Digest of the selected rule ids plus the cache version."""
    payload = f"v{CACHE_VERSION}:" + ",".join(sorted(rule_ids))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


def _encode_violation(violation: Violation) -> List[object]:
    return [
        violation.rule_id,
        violation.severity.value,
        violation.path,
        violation.line,
        violation.column,
        violation.message,
    ]


def _decode_violation(row: Sequence[object]) -> Violation:
    rule_id, severity, path, line, column, message = row
    return Violation(
        rule_id=str(rule_id),
        severity=Severity(str(severity)),
        path=str(path),
        line=int(line),  # type: ignore[arg-type]
        column=int(column),  # type: ignore[arg-type]
        message=str(message),
    )


class LintCache:
    """File-keyed violation cache, persisted as one JSON document.

    Usage (what :class:`~repro.lint.engine.LintRunner` does)::

        cache = LintCache.load(path, fingerprint)
        hit = cache.lookup(file_path, file_hash, project_hash)
        ...
        cache.store(file_path, file_hash, project_hash, local, cross)
        cache.save()

    Entries hold the *unsuppressed* violations split into local-rule
    and cross-file-rule lists; a lookup hits only when the file hash
    matches (both lists) and, for the cross-file list, the project hash
    matches too.
    """

    def __init__(self, path: Path, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._entries: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0

    # -- persistence --------------------------------------------------------

    @classmethod
    def load(cls, path: Path, fingerprint: str) -> "LintCache":
        """Load a store; mismatched or corrupt stores start empty."""
        cache = cls(path, fingerprint)
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError):
            return cache
        if not isinstance(raw, dict):
            return cache
        if raw.get("fingerprint") != fingerprint:
            return cache
        entries = raw.get("entries")
        if isinstance(entries, dict):
            cache._entries = entries
        return cache

    def save(self) -> None:
        """Persist the store (best-effort: IO errors are swallowed)."""
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "entries": self._entries,
        }
        try:
            self.path.write_text(json.dumps(payload, sort_keys=True))
        except OSError:
            pass

    # -- lookups ------------------------------------------------------------

    def _rows(
        self, file_path: str, file_hash: str, key: str
    ) -> Optional[List[Violation]]:
        entry = self._entries.get(file_path)
        if not isinstance(entry, dict):
            return None
        if entry.get("file_hash") != file_hash:
            return None
        try:
            return [
                _decode_violation(row)
                for row in entry.get(key, [])  # type: ignore[union-attr]
            ]
        except (TypeError, ValueError, KeyError):
            return None

    def lookup_local(
        self, file_path: str, file_hash: str
    ) -> Optional[List[Violation]]:
        """Cached local-rule violations (file hash is the whole key)."""
        rows = self._rows(file_path, file_hash, "local")
        if rows is None:
            self.misses += 1
        else:
            self.hits += 1
        return rows

    def lookup_cross(
        self, file_path: str, file_hash: str, project_hash: str
    ) -> Optional[List[Violation]]:
        """Cached cross-file-rule violations; any project edit misses."""
        entry = self._entries.get(file_path)
        if (
            not isinstance(entry, dict)
            or entry.get("project_hash") != project_hash
        ):
            self.misses += 1
            return None
        rows = self._rows(file_path, file_hash, "cross")
        if rows is None:
            self.misses += 1
        else:
            self.hits += 1
        return rows

    def store(
        self,
        file_path: str,
        file_hash: str,
        project_hash: str,
        local: Sequence[Violation],
        cross: Sequence[Violation],
    ) -> None:
        """Record a file's unsuppressed violations."""
        self._entries[file_path] = {
            "file_hash": file_hash,
            "project_hash": project_hash,
            "local": [_encode_violation(v) for v in local],
            "cross": [_encode_violation(v) for v in cross],
        }

    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer part of the run."""
        live = set(live_paths)
        for stale in [p for p in self._entries if p not in live]:
            del self._entries[stale]
