"""Baseline suppression files for adopting reprolint incrementally.

A baseline records the findings a codebase has *today* so a team can
turn a new rule on without first fixing every historical hit: known
violations are filtered out of subsequent runs, and only regressions
(new findings) fail the gate.  Each finding is fingerprinted as a hash
of ``(path, rule_id, message)`` — deliberately **not** the line number,
so unrelated edits that shift code do not resurrect suppressed
findings.  The baseline stores a *count* per fingerprint: introducing a
second identical finding in the same file still fails.

This repo keeps ``src/`` clean (see the self-gate test), so the
expected use is third-party trees and staged rollouts of future rules
— not hiding true positives, which the ISSUE explicitly forbids.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .engine import Violation

BASELINE_VERSION = 1


def fingerprint(violation: Violation) -> str:
    """Stable identity of one finding, line-number independent."""
    payload = "\0".join(
        [violation.path, violation.rule_id, violation.message]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    """Write a baseline file recording ``violations`` as known."""
    counts: Dict[str, int] = {}
    for violation in violations:
        key = fingerprint(violation)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": counts,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def read_baseline(path: Path) -> Dict[str, int]:
    """Load a baseline's fingerprint counts.

    Raises:
        ValueError: when the file is not a valid baseline document.
    """
    raw = json.loads(path.read_text())
    if not isinstance(raw, dict) or "fingerprints" not in raw:
        raise ValueError(f"not a reprolint baseline file: {path}")
    counts = raw["fingerprints"]
    if not isinstance(counts, dict):
        raise ValueError(f"malformed baseline fingerprints: {path}")
    return {str(key): int(value) for key, value in counts.items()}


def apply_baseline(
    violations: Sequence[Violation], counts: Dict[str, int]
) -> Tuple[List[Violation], int]:
    """Filter baselined findings out of a violation list.

    Returns ``(surviving_violations, suppressed_count)``.  When the
    same fingerprint occurs more often than the baseline recorded, the
    excess occurrences survive (ordered by position), so duplicating a
    known-bad pattern still fails the gate.
    """
    budget = dict(counts)
    surviving: List[Violation] = []
    suppressed = 0
    for violation in sorted(violations, key=Violation.sort_key):
        key = fingerprint(violation)
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
            suppressed += 1
        else:
            surviving.append(violation)
    return surviving, suppressed
