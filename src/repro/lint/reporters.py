"""Violation reporters: text, JSON, and SARIF.

The text reporter is what developers read locally; the JSON reporter is
what CI and editor integrations consume (``repro-ddos lint --format
json``); the SARIF reporter emits a `SARIF 2.1.0
<https://docs.oasis-open.org/sarif/sarif/v2.1.0/>`_ log that GitHub
code scanning ingests, turning every violation into an inline PR
annotation.  All three render the same
:class:`~repro.lint.engine.Violation` stream, so the outputs can never
disagree about what fired.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .engine import Severity, Violation, all_rules


class Reporter:
    """Base reporter: renders a violation list to a string."""

    def render(self, violations: Sequence[Violation]) -> str:
        """Return the full report for ``violations``."""
        raise NotImplementedError


class TextReporter(Reporter):
    """One ``path:line:col: RLxxx severity: message`` line per violation."""

    def render(self, violations: Sequence[Violation]) -> str:
        """Render violations plus a one-line summary."""
        lines = [
            f"{v.path}:{v.line}:{v.column + 1}: "
            f"{v.rule_id} {v.severity.value}: {v.message}"
            for v in violations
        ]
        errors = sum(1 for v in violations if v.severity is Severity.ERROR)
        warnings = len(violations) - errors
        if violations:
            lines.append("")
        lines.append(
            f"reprolint: {errors} error(s), {warnings} warning(s) "
            f"across {len(set(v.path for v in violations))} file(s)"
            if violations
            else "reprolint: all checks passed"
        )
        return "\n".join(lines)


class JsonReporter(Reporter):
    """A JSON document with violations, per-rule counts, and the catalogue."""

    def render(self, violations: Sequence[Violation]) -> str:
        """Render the JSON payload (stable key order, indented)."""
        by_rule: Dict[str, int] = {}
        for violation in violations:
            by_rule[violation.rule_id] = by_rule.get(violation.rule_id, 0) + 1
        payload: Dict[str, Any] = {
            "violations": [
                {
                    "rule": v.rule_id,
                    "severity": v.severity.value,
                    "path": v.path,
                    "line": v.line,
                    "column": v.column + 1,
                    "message": v.message,
                }
                for v in violations
            ],
            "counts": {
                "total": len(violations),
                "errors": sum(
                    1 for v in violations if v.severity is Severity.ERROR
                ),
                "warnings": sum(
                    1 for v in violations if v.severity is Severity.WARNING
                ),
                "by_rule": by_rule,
            },
            "rules": rule_catalogue(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)


#: SARIF 2.1.0 schema location, embedded in every log for validators.
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"


class SarifReporter(Reporter):
    """A SARIF 2.1.0 log: one run, one result per violation.

    The rule catalogue becomes ``tool.driver.rules`` (so code-scanning
    UIs show the title and invariant as help text), and each violation
    becomes a ``result`` with a ``physicalLocation`` region.  Severity
    maps ``ERROR -> "error"``, ``WARNING -> "warning"`` — SARIF's own
    level vocabulary.
    """

    def render(self, violations: Sequence[Violation]) -> str:
        """Render the SARIF JSON log."""
        rules = all_rules()
        rule_index = {rule.rule_id: i for i, rule in enumerate(rules)}
        driver: Dict[str, Any] = {
            "name": "reprolint",
            "rules": [
                {
                    "id": rule.rule_id,
                    "name": rule.__name__,
                    "shortDescription": {"text": rule.title},
                    "fullDescription": {"text": rule.invariant},
                    "defaultConfiguration": {
                        "level": (
                            "error"
                            if rule.severity is Severity.ERROR
                            else "warning"
                        )
                    },
                }
                for rule in rules
            ],
        }
        results: List[Dict[str, Any]] = []
        for violation in violations:
            result: Dict[str, Any] = {
                "ruleId": violation.rule_id,
                "level": (
                    "error"
                    if violation.severity is Severity.ERROR
                    else "warning"
                ),
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": violation.line,
                                "startColumn": violation.column + 1,
                            },
                        }
                    }
                ],
            }
            if violation.rule_id in rule_index:
                result["ruleIndex"] = rule_index[violation.rule_id]
            results.append(result)
        log: Dict[str, Any] = {
            "$schema": SARIF_SCHEMA,
            "version": SARIF_VERSION,
            "runs": [
                {
                    "tool": {"driver": driver},
                    "results": results,
                    "columnKind": "utf16CodeUnits",
                    "originalUriBaseIds": {
                        "SRCROOT": {"uri": "file:///"}
                    },
                }
            ],
        }
        return json.dumps(log, indent=2, sort_keys=True)


def rule_catalogue() -> List[Dict[str, str]]:
    """The registered rules as ``{id, title, invariant, severity}`` dicts."""
    return [
        {
            "id": rule.rule_id,
            "title": rule.title,
            "invariant": rule.invariant,
            "severity": rule.severity.value,
        }
        for rule in all_rules()
    ]
