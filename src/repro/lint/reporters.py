"""Violation reporters: human-readable text and machine-readable JSON.

The text reporter is what developers read locally; the JSON reporter is
what CI and editor integrations consume (``repro-ddos lint --format
json``).  Both render the same :class:`~repro.lint.engine.Violation`
stream, so the two outputs can never disagree about what fired.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .engine import Severity, Violation, all_rules


class Reporter:
    """Base reporter: renders a violation list to a string."""

    def render(self, violations: Sequence[Violation]) -> str:
        """Return the full report for ``violations``."""
        raise NotImplementedError


class TextReporter(Reporter):
    """One ``path:line:col: RLxxx severity: message`` line per violation."""

    def render(self, violations: Sequence[Violation]) -> str:
        """Render violations plus a one-line summary."""
        lines = [
            f"{v.path}:{v.line}:{v.column + 1}: "
            f"{v.rule_id} {v.severity.value}: {v.message}"
            for v in violations
        ]
        errors = sum(1 for v in violations if v.severity is Severity.ERROR)
        warnings = len(violations) - errors
        if violations:
            lines.append("")
        lines.append(
            f"reprolint: {errors} error(s), {warnings} warning(s) "
            f"across {len(set(v.path for v in violations))} file(s)"
            if violations
            else "reprolint: all checks passed"
        )
        return "\n".join(lines)


class JsonReporter(Reporter):
    """A JSON document with violations, per-rule counts, and the catalogue."""

    def render(self, violations: Sequence[Violation]) -> str:
        """Render the JSON payload (stable key order, indented)."""
        by_rule: Dict[str, int] = {}
        for violation in violations:
            by_rule[violation.rule_id] = by_rule.get(violation.rule_id, 0) + 1
        payload: Dict[str, Any] = {
            "violations": [
                {
                    "rule": v.rule_id,
                    "severity": v.severity.value,
                    "path": v.path,
                    "line": v.line,
                    "column": v.column + 1,
                    "message": v.message,
                }
                for v in violations
            ],
            "counts": {
                "total": len(violations),
                "errors": sum(
                    1 for v in violations if v.severity is Severity.ERROR
                ),
                "warnings": sum(
                    1 for v in violations if v.severity is Severity.WARNING
                ),
                "by_rule": by_rule,
            },
            "rules": rule_catalogue(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def rule_catalogue() -> List[Dict[str, str]]:
    """The registered rules as ``{id, title, invariant, severity}`` dicts."""
    return [
        {
            "id": rule.rule_id,
            "title": rule.title,
            "invariant": rule.invariant,
            "severity": rule.severity.value,
        }
        for rule in all_rules()
    ]
