"""The reprolint rule catalogue (RL001-RL007).

Each rule protects one invariant of the Distinct-Count Sketch
reproduction; the class docstrings name the paper section the invariant
comes from.  ``docs/dev.md`` carries the user-facing catalogue.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from .engine import LintContext, ModuleInfo, Rule, Severity, Violation, register


def _dotted(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as a dotted string."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _contains_derive_seed(node: ast.AST) -> bool:
    """True when the expression contains a ``derive_seed(...)`` call."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            dotted = _dotted(child.func)
            if dotted is not None and dotted.split(".")[-1] == "derive_seed":
                return True
    return False


def _toplevel_docstring(node: ast.AST) -> Optional[str]:
    try:
        return ast.get_docstring(node)  # type: ignore[arg-type]
    except TypeError:
        return None


@register
class UnseededRandomnessRule(Rule):
    """RL001: every random draw must be explicitly and derivably seeded.

    Invariant (Section 3, merge linearity): sketches built on different
    routers merge bit-exactly only because every hash table derives from
    one root seed through :func:`repro.hashing.seeds.derive_seed`.
    Module-level ``random.*`` functions and the legacy ``np.random.*``
    API draw from hidden global state; ``random.Random()`` /
    ``np.random.default_rng()`` without a ``derive_seed``-derived seed
    silently decouple reruns.  Allowed: ``random.Random(derive_seed(...))``
    and ``np.random.default_rng(derive_seed(...))``.
    """

    rule_id = "RL001"
    title = "no unseeded or hidden-state randomness"
    invariant = "reproducible, mergeable hash structure (Section 3)"

    #: np.random attributes that are part of the modern Generator API.
    NP_ALLOWED: FrozenSet[str] = frozenset(
        {"Generator", "BitGenerator", "SeedSequence", "PCG64", "Philox",
         "SFC64", "MT19937", "default_rng"}
    )
    #: Constructors whose first argument must flow through derive_seed.
    SEEDED_CONSTRUCTORS: FrozenSet[str] = frozenset(
        {"random.Random", "np.random.default_rng",
         "numpy.random.default_rng"}
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Flag hidden-state draws and non-derived RNG seeds."""
        if context.in_module("repro.lint"):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._check_import(context, node)
            if isinstance(node, ast.Call):
                yield from self._check_call(context, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_np_attribute(context, node)

    def _check_import(
        self, context: LintContext, node: ast.ImportFrom
    ) -> Iterator[Violation]:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in ("Random", "SystemRandom"):
                    yield self.violation(
                        context, node,
                        f"importing random.{alias.name} pulls hidden global "
                        "RNG state; construct random.Random(derive_seed(...))",
                    )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in self.NP_ALLOWED:
                    yield self.violation(
                        context, node,
                        f"importing numpy.random.{alias.name} (legacy API); "
                        "use default_rng(derive_seed(...))",
                    )

    def _check_call(
        self, context: LintContext, node: ast.Call
    ) -> Iterator[Violation]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted == "random.SystemRandom":
            yield self.violation(
                context, node,
                "random.SystemRandom draws OS entropy and can never be "
                "reproduced; use random.Random(derive_seed(...))",
            )
            return
        if dotted in self.SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield self.violation(
                    context, node,
                    f"{dotted}() without a seed is irreproducible; pass "
                    "derive_seed(root_seed, \"label\")",
                )
            else:
                seed_expr: ast.AST = (
                    node.args[0] if node.args else node.keywords[0].value
                )
                if not _contains_derive_seed(seed_expr):
                    yield self.violation(
                        context, node,
                        f"{dotted} seed must be derived via derive_seed(...) "
                        "so sub-streams stay independent and label-stable",
                    )
            return
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2 and parts[1].islower():
            yield self.violation(
                context, node,
                f"module-level {dotted}() uses the hidden global RNG; "
                "use an explicit random.Random(derive_seed(...))",
            )

    def _check_np_attribute(
        self, context: LintContext, node: ast.Attribute
    ) -> Iterator[Violation]:
        dotted = _dotted(node)
        if dotted is None:
            return
        parts = dotted.split(".")
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] not in self.NP_ALLOWED
        ):
            yield self.violation(
                context, node,
                f"{dotted} is the legacy global-state numpy API; use "
                "np.random.default_rng(derive_seed(...))",
            )


@register
class FloatInCounterPathRule(Rule):
    """RL002: counter hot paths must stay in exact integer arithmetic.

    Invariant (Section 3, delete-resistance): a matched insert/delete
    pair must leave every count-signature counter *exactly* zero — the
    ``ReturnSingleton`` decode tests ``count == total`` with integer
    equality.  One float literal, true division, or ``float()`` call in
    the update path would introduce rounding and break singleton
    recovery and structural-equality merges.
    """

    rule_id = "RL002"
    title = "no float arithmetic in counter hot paths"
    invariant = "exact integer counters / delete-resistance (Section 3)"

    #: module -> function names forming the hot path (None = whole module).
    HOT_PATHS: Dict[str, Optional[FrozenSet[str]]] = {
        "repro.sketch.signature": None,
        "repro.sketch.arena": None,
        "repro.sketch.dcs": frozenset(
            {"update", "insert", "delete", "process", "process_stream",
             "update_batch", "_update_pair", "_apply_pair",
             "_apply_pairs_batch", "_apply_batch_vectorized",
             "_scatter_into_store", "merge"}
        ),
        "repro.sketch.tracking": frozenset(
            {"update", "insert", "delete", "process", "process_stream",
             "update_batch", "_update_pair", "_apply_pair",
             "_scatter_into_store", "_add_singleton_occurrence",
             "_remove_singleton_occurrence"}
        ),
        "repro.hashing.universal": frozenset(
            {"__call__", "field_value", "hash_many",
             "_hash_many_vectorized", "_mod_mersenne_61"}
        ),
        "repro.hashing.tabulation": frozenset(
            {"__call__", "word", "words_many", "hash_many"}
        ),
        "repro.hashing.geometric": frozenset(
            {"__call__", "levels_many", "lsb_index"}
        ),
    }

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Flag float literals, true division, and float() in hot paths."""
        if context.module not in self.HOT_PATHS:
            return
        scoped = self.HOT_PATHS[context.module]
        if scoped is None:
            yield from self._check_scope(context, context.tree, "<module>")
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in scoped
            ):
                yield from self._check_scope(context, node, node.name)

    def _check_scope(
        self, context: LintContext, scope: ast.AST, where: str
    ) -> Iterator[Violation]:
        for node in ast.walk(scope):
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                yield self.violation(
                    context, node,
                    f"float literal {node.value!r} in counter hot path "
                    f"({where}); counters must stay exact integers",
                )
            elif isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
                node.op, ast.Div
            ):
                yield self.violation(
                    context, node,
                    f"true division in counter hot path ({where}) produces "
                    "floats; use // if integer division is intended",
                )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted == "float":
                    yield self.violation(
                        context, node,
                        f"float() conversion in counter hot path ({where})",
                    )


@register
class WallClockRule(Rule):
    """RL003: no wall-clock reads inside algorithm code.

    Invariant (Section 2 stream model + epoch semantics): every
    algorithmic decision is a function of the *update stream* alone, so
    replaying a trace byte-for-byte reproduces every alarm.  Wall-clock
    reads are legal only in ``repro.monitor.epochs`` (epoch rotation
    policy boundary), ``repro.metrics.timing`` (measurement harness),
    and ``repro.resilience.checkpoint`` (checkpoint-duration telemetry
    at the I/O boundary — never algorithmic state).
    """

    rule_id = "RL003"
    title = "no wall-clock reads in algorithm modules"
    invariant = "stream-determined behaviour / replayability (Section 2)"

    ALLOWED_MODULES: Tuple[str, ...] = (
        "repro.monitor.epochs",
        "repro.metrics.timing",
        "repro.obs.trace",
        "repro.resilience.checkpoint",
    )
    BANNED_CALLS: FrozenSet[str] = frozenset(
        {"time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
         "time.perf_counter", "time.perf_counter_ns", "time.process_time",
         "time.process_time_ns", "datetime.now", "datetime.utcnow",
         "datetime.today", "date.today", "datetime.datetime.now",
         "datetime.datetime.utcnow", "datetime.date.today"}
    )
    BANNED_TIME_IMPORTS: FrozenSet[str] = frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
         "perf_counter_ns", "process_time", "process_time_ns"}
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Flag clock reads outside the allowlisted boundary modules."""
        if context.in_module(*self.ALLOWED_MODULES) or context.in_module(
            "repro.lint"
        ):
            return
        # Measurement harnesses *are* clocks: benchmark drivers time the
        # algorithm from outside, which is exactly where wall-clock
        # reads belong.  Matched structurally (bench_* module or a
        # benchmarks/ directory), not via pragmas in every file.
        if context.module.startswith("bench_") or "benchmarks" in (
            Path(context.path).parts
        ):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in self.BANNED_CALLS:
                    yield self.violation(
                        context, node,
                        f"{dotted}() reads the wall clock; algorithm code "
                        "must be a function of the update stream (allowed "
                        "only in " + ", ".join(self.ALLOWED_MODULES) + ")",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self.BANNED_TIME_IMPORTS:
                        yield self.violation(
                            context, node,
                            f"importing time.{alias.name} into an algorithm "
                            "module invites wall-clock dependence",
                        )


@register
class MutableDefaultRule(Rule):
    """RL004: no mutable default arguments.

    Invariant (engineering): a mutable default is created once at
    function definition and shared across calls — state leaking between
    sketches or monitors would silently violate the independence the
    analysis assumes (and has bitten stream-processing code before).
    """

    rule_id = "RL004"
    title = "no mutable default arguments"
    invariant = "no shared state between independent structures"

    MUTABLE_CALLS: FrozenSet[str] = frozenset(
        {"list", "dict", "set", "bytearray", "deque", "defaultdict",
         "Counter", "OrderedDict"}
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Flag list/dict/set (literals or constructors) used as defaults."""
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        context, default,
                        f"mutable default argument in {node.name}(); default "
                        "to None and create the object inside the function",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                return dotted.split(".")[-1] in self.MUTABLE_CALLS
        return False


def _import_map(
    init_info: ModuleInfo,
) -> Dict[str, Tuple[str, str]]:
    """Map each name bound by from-imports in an ``__init__`` to its origin.

    Returns ``{bound_name: (source_module_dotted, original_name)}``.
    ``from . import sub`` maps ``sub`` to ``(package.sub, "*module*")``.
    """
    package = init_info.module
    mapping: Dict[str, Tuple[str, str]] = {}
    for node in init_info.tree.body:
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.level > 0:
            parts = package.split(".")
            if node.level > len(parts):
                continue
            base_parts = parts[: len(parts) - (node.level - 1)]
            base = ".".join(base_parts)
            source = base + "." + node.module if node.module else base
        else:
            source = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module is None and node.level > 0:
                mapping[bound] = (source + "." + alias.name, "*module*")
            else:
                mapping[bound] = (source, alias.name)
    return mapping


def _all_entries(tree: ast.Module) -> Optional[List[ast.Constant]]:
    """The ``__all__`` list's string constants, or None if not defined."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    return [
                        element
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
    return None


def _toplevel_bindings(tree: ast.Module) -> Set[str]:
    """Every name bound at module top level."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for child in ast.walk(target):
                    if isinstance(child, ast.Name):
                        bound.add(child.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                    bound.add(sub.name)
    return bound


@register
class PublicApiTypedRule(Rule):
    """RL005: the public API must be fully annotated and documented.

    Invariant (engineering gate): everything a package re-exports
    through ``__all__`` in its ``__init__.py`` is a contract surface;
    mypy's strict gate on the core packages only bites if the exported
    callables actually carry annotations, and docstrings are what maps
    each export back to its paper construct.
    """

    rule_id = "RL005"
    title = "public API exports fully annotated with docstrings"
    invariant = "typed, documented contract surface for the core"
    #: re-export resolution reads *other* modules' sources, so a cached
    #: verdict is only valid while the whole project is unchanged.
    cross_file = True

    _MAX_REEXPORT_DEPTH = 5

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Resolve every ``__all__`` export and check its definition."""
        if not context.is_package_init:
            return
        entries = _all_entries(context.tree)
        if entries is None:
            return
        init_info = context.index.get(context.module)
        if init_info is None:
            return
        for entry in entries:
            name = entry.value
            if name.startswith("__") and name.endswith("__"):
                continue
            yield from self._check_export(context, entry, init_info, name, 0)

    def _check_export(
        self,
        context: LintContext,
        entry: ast.Constant,
        info: ModuleInfo,
        name: str,
        depth: int,
    ) -> Iterator[Violation]:
        if depth > self._MAX_REEXPORT_DEPTH:
            return
        definition = self._find_definition(info.tree, name)
        if definition is not None:
            yield from self._check_definition(context, entry, info, definition)
            return
        mapping = _import_map(info)
        if name not in mapping:
            return
        source_module, original = mapping[name]
        if original == "*module*":
            return  # submodule re-export: nothing to annotate
        source_info = context.index.get(source_module)
        if source_info is None:
            return  # outside the lint run (external dependency)
        yield from self._check_export(
            context, entry, source_info, original, depth + 1
        )

    @staticmethod
    def _find_definition(
        tree: ast.Module, name: str
    ) -> Optional[ast.AST]:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) and node.name == name:
                return node
        return None

    def _check_definition(
        self,
        context: LintContext,
        entry: ast.Constant,
        info: ModuleInfo,
        definition: ast.AST,
    ) -> Iterator[Violation]:
        if isinstance(definition, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_function(
                context, entry, info, definition, method=False
            )
        elif isinstance(definition, ast.ClassDef):
            if _toplevel_docstring(definition) is None:
                yield self.violation(
                    context, entry,
                    f"exported class {definition.name} "
                    f"({info.module}) has no docstring",
                )
            for node in definition.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == "__init__"
                ):
                    yield from self._check_function(
                        context, entry, info, node, method=True,
                        owner=definition.name,
                    )

    def _check_function(
        self,
        context: LintContext,
        entry: ast.Constant,
        info: ModuleInfo,
        function: "Union[ast.FunctionDef, ast.AsyncFunctionDef]",
        method: bool,
        owner: str = "",
    ) -> Iterator[Violation]:
        label = f"{owner}.{function.name}" if owner else function.name
        if not method and _toplevel_docstring(function) is None:
            yield self.violation(
                context, entry,
                f"exported function {label} ({info.module}) has no docstring",
            )
        if function.returns is None:
            yield self.violation(
                context, entry,
                f"exported callable {label} ({info.module}) is missing a "
                "return annotation",
            )
        args = function.args
        positional = list(args.posonlyargs) + list(args.args)
        if method and positional:
            positional = positional[1:]  # drop self/cls
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                yield self.violation(
                    context, entry,
                    f"exported callable {label} ({info.module}) has "
                    f"unannotated parameter {arg.arg!r}",
                )
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                yield self.violation(
                    context, entry,
                    f"exported callable {label} ({info.module}) has "
                    f"unannotated parameter *{star.arg!r}",
                )


@register
class AllMatchesExportsRule(Rule):
    """RL006: ``__all__`` must match what the module actually exports.

    Invariant (engineering gate): mypy's ``no_implicit_reexport`` and
    every ``from repro.x import *`` consumer trust ``__all__``; a stale
    entry raises ``AttributeError`` at import-star time, a missing one
    silently hides API.  Entries must be bound, unique, and sorted, and
    an ``__init__.py``'s public from-imports must all be listed.
    """

    rule_id = "RL006"
    title = "__all__ must match actual module exports"
    invariant = "truthful re-export surface (no_implicit_reexport)"

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Cross-check ``__all__`` against the module's real bindings."""
        entries = _all_entries(context.tree)
        if entries is None:
            if context.is_package_init and any(
                isinstance(node, ast.ImportFrom)
                for node in context.tree.body
            ):
                yield self.violation(
                    context, context.tree.body[0]
                    if context.tree.body else context.tree,
                    "package __init__ re-exports names but defines no "
                    "__all__",
                )
            return
        bound = _toplevel_bindings(context.tree)
        names = [entry.value for entry in entries]
        seen: Set[str] = set()
        for entry in entries:
            if entry.value in seen:
                yield self.violation(
                    context, entry,
                    f"duplicate __all__ entry {entry.value!r}",
                )
            seen.add(entry.value)
            if entry.value not in bound and entry.value != "__version__":
                yield self.violation(
                    context, entry,
                    f"__all__ lists {entry.value!r} but the module does not "
                    "bind it",
                )
        if names != sorted(names):
            yield self.violation(
                context, entries[0],
                "__all__ is not sorted; keep it sorted so diffs stay "
                "reviewable",
                severity=Severity.WARNING,
            )
        if context.is_package_init:
            listed = set(names)
            for node in context.tree.body:
                if not isinstance(node, ast.ImportFrom):
                    continue
                for alias in node.names:
                    bound_name = alias.asname or alias.name
                    if bound_name.startswith("_"):
                        continue
                    if bound_name not in listed:
                        yield self.violation(
                            context, node,
                            f"__init__ imports {bound_name!r} but __all__ "
                            "does not list it (add it or alias with a "
                            "leading underscore)",
                        )


@register
class OverbroadExceptRule(Rule):
    """RL007: no bare or overbroad ``except`` in the sketch core.

    Invariant (Section 3/4 correctness): the sketch update and query
    paths must never swallow a counter-arithmetic error — a silently
    corrupted signature poisons every later singleton decode and merge.
    ``except:``/``except Exception`` in ``repro.sketch`` or
    ``repro.hashing`` is an error; elsewhere it is a warning.
    """

    rule_id = "RL007"
    title = "no bare/overbroad except in sketch update/query paths"
    invariant = "counter errors must surface, not be swallowed (Section 3)"

    CORE_MODULES: Tuple[str, ...] = ("repro.sketch", "repro.hashing")
    BROAD: FrozenSet[str] = frozenset({"Exception", "BaseException"})

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Flag handlers that catch everything."""
        in_core = context.in_module(*self.CORE_MODULES)
        severity = Severity.ERROR if in_core else Severity.WARNING
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    context, node,
                    "bare except swallows every error including "
                    "KeyboardInterrupt; catch the specific ReproError "
                    "subclass",
                    severity=severity,
                )
                continue
            broad = self._broad_names(node.type)
            for name in broad:
                yield self.violation(
                    context, node,
                    f"except {name} is overbroad here; catch the specific "
                    "exception type so counter corruption surfaces",
                    severity=severity,
                )

    def _broad_names(self, node: ast.expr) -> List[str]:
        candidates = (
            list(node.elts) if isinstance(node, ast.Tuple) else [node]
        )
        found: List[str] = []
        for candidate in candidates:
            dotted = _dotted(candidate)
            if dotted is not None and dotted.split(".")[-1] in self.BROAD:
                found.append(dotted)
        return found


@register
class HotPathDisciplineRule(Rule):
    """RL008: functions marked ``# hot-path`` must stay allocation-lean.

    Invariant (Section 3 performance claim): the sketch's ``O(r log m)``
    per-update cost only holds in practice if the update path does no
    per-item heap allocation and no metric-child lookup.  A function in
    ``repro.sketch`` / ``repro.hashing`` carrying a ``# hot-path``
    marker (on its ``def`` line, its signature's closing line, or the
    line directly above) promises exactly that; this rule enforces the
    promise:

    * no ``.labels(...)`` calls anywhere in the function — metric
      children must be pre-bound at construction time;
    * no container displays (``[...]``/``{...}``), comprehensions, or
      CamelCase constructor calls inside a loop — per-item objects on
      the update path are the overhead the packed arenas exist to
      remove.

    Functions without the marker (e.g. the reference backend's
    per-update path, which deliberately materializes
    ``CountSignature`` objects) are not checked.
    """

    rule_id = "RL008"
    title = "hot-path functions: no labels() calls, no per-item allocation"
    invariant = "O(r log m) update cost without allocation churn (Section 3)"

    CORE_MODULES: Tuple[str, ...] = ("repro.sketch", "repro.hashing")
    MARKER = "# hot-path"

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Check every ``# hot-path``-marked function in core modules."""
        if not context.in_module(*self.CORE_MODULES):
            return
        lines = context.source.splitlines()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_marked(node, lines):
                    yield from self._check_function(context, node)

    def _is_marked(
        self,
        node: "Union[ast.FunctionDef, ast.AsyncFunctionDef]",
        lines: List[str],
    ) -> bool:
        """Marker on the line above ``def`` or any signature line."""
        if not node.body:
            return False
        start = max(0, node.lineno - 2)
        end = min(len(lines), node.body[0].lineno - 1)
        if end <= start:
            end = min(len(lines), start + 1)
        return any(
            self.MARKER in line for line in lines[start:end]
        )

    def _check_function(
        self,
        context: LintContext,
        function: "Union[ast.FunctionDef, ast.AsyncFunctionDef]",
    ) -> Iterator[Violation]:
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "labels"
            ):
                key = (node.lineno, node.col_offset)
                if key not in seen:
                    seen.add(key)
                    yield self.violation(
                        context, node,
                        f".labels() lookup inside hot-path function "
                        f"{function.name}(); pre-bind the metric child at "
                        "construction time",
                    )
        for loop in ast.walk(function):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if node is loop:
                    continue
                what = self._allocation(node)
                if what is None:
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield self.violation(
                    context, node,
                    f"{what} inside a loop of hot-path function "
                    f"{function.name}(); hoist it out of the loop or "
                    "restructure to reuse one object",
                )

    @staticmethod
    def _allocation(node: ast.AST) -> Optional[str]:
        """Name the per-item allocation ``node`` performs, if any."""
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return "container display"
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return "comprehension"
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                name = dotted.split(".")[-1]
                if name[:1].isupper() and not name.isupper():
                    return f"constructor call {name}()"
        return None
