"""Intraprocedural dataflow for reprolint's program rules.

Three layers, each usable on its own:

1. :func:`build_cfg` — a statement-level control-flow graph of one
   function.  Every simple statement is a node; edges follow the
   Python semantics reprolint cares about (``if``/``while``/``for``
   branches and loop-back edges, ``break``/``continue``, ``try``
   bodies with conservative edges into their handlers, ``finally``
   blocks on both the normal and the exceptional route, ``return`` /
   ``raise`` edges into dedicated exit nodes).

2. :func:`solve_forward` — a worklist fixed-point solver for any
   forward analysis expressed as (initial state, transfer function,
   join).  :func:`reaching_definitions` is the classic instance: for
   every statement, which assignments of each name may reach it.

3. :class:`ValueState` / :func:`analyse_values` — the abstract
   interpretation the RL009-RL013 rules consume: every local name is
   tagged with a :class:`Kind` (lock, open handle, live RNG, shared
   memory, raw-bytes-from-disk, CRC-verified bytes, ...) and every
   acquired resource with a lifecycle state (open / closed / escaped),
   joined across paths.  The rules then ask questions like "does any
   name of kind ``LOCK`` flow into this ``send()``?" or "is this
   resource still (maybe) open at an explicit ``raise`` exit?".

Everything here is pure AST analysis: no imports of the linted code,
no execution.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# ---------------------------------------------------------------------------
# Control-flow graph
# ---------------------------------------------------------------------------

#: Node ids are dense ints; ENTRY/EXIT/RAISE are dedicated pseudo-nodes.
ENTRY = 0
EXIT = 1
RAISE_EXIT = 2
_FIRST_REAL = 3


@dataclass
class CfgNode:
    """One CFG node: a simple statement (or a pseudo entry/exit)."""

    node_id: int
    statement: Optional[ast.stmt]
    successors: List[int] = field(default_factory=list)
    #: kind of exit this node performs, if any ("return" / "raise").
    exit_kind: Optional[str] = None


class ControlFlowGraph:
    """Statement-level CFG of one function body."""

    def __init__(self, function: FunctionNode) -> None:
        self.function = function
        self.nodes: Dict[int, CfgNode] = {
            ENTRY: CfgNode(ENTRY, None),
            EXIT: CfgNode(EXIT, None),
            RAISE_EXIT: CfgNode(RAISE_EXIT, None),
        }
        self._next_id = _FIRST_REAL

    def new_node(self, statement: ast.stmt) -> int:
        """Allocate a node for one simple statement."""
        node_id = self._next_id
        self._next_id += 1
        self.nodes[node_id] = CfgNode(node_id, statement)
        return node_id

    def add_edge(self, source: int, target: int) -> None:
        """Add a directed edge (idempotent)."""
        successors = self.nodes[source].successors
        if target not in successors:
            successors.append(target)

    def predecessors(self, node_id: int) -> List[int]:
        """All nodes with an edge into ``node_id``."""
        return [
            nid
            for nid, node in self.nodes.items()
            if node_id in node.successors
        ]

    def statement_nodes(self) -> List[CfgNode]:
        """Real statement nodes in allocation (roughly source) order."""
        return [
            self.nodes[nid]
            for nid in sorted(self.nodes)
            if nid >= _FIRST_REAL
        ]


@dataclass
class _Frontier:
    """Loose ends while building: nodes whose next edge is pending."""

    dangling: List[int]
    breaks: List[int] = field(default_factory=list)
    continues: List[int] = field(default_factory=list)


def build_cfg(function: FunctionNode) -> ControlFlowGraph:
    """Build the statement-level CFG of ``function``."""
    cfg = ControlFlowGraph(function)
    frontier = _build_block(
        cfg, function.body, [ENTRY], handlers=(), loop=None
    )
    for nid in frontier.dangling:
        cfg.add_edge(nid, EXIT)
    return cfg


def _build_block(
    cfg: ControlFlowGraph,
    statements: Sequence[ast.stmt],
    incoming: List[int],
    handlers: Tuple[int, ...],
    loop: Optional[_Frontier],
) -> _Frontier:
    """Wire one statement list; returns the block's loose ends.

    ``handlers`` are the entry nodes of enclosing except-handlers: every
    statement inside a ``try`` body gets a conservative edge to each
    (any statement may raise).  ``loop`` collects break/continue nodes
    of the innermost enclosing loop.
    """
    current = list(incoming)
    result = _Frontier(dangling=[])
    for statement in statements:
        if not current:
            break  # unreachable code after return/raise/break
        if isinstance(statement, (ast.If,)):
            head = cfg.new_node(statement)
            _link(cfg, current, head, handlers)
            then = _build_block(
                cfg, statement.body, [head], handlers, loop
            )
            orelse = _build_block(
                cfg, statement.orelse, [head], handlers, loop
            ) if statement.orelse else _Frontier(dangling=[head])
            current = then.dangling + orelse.dangling
            _merge_loop_exits(result, then, orelse)
        elif isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            head = cfg.new_node(statement)
            _link(cfg, current, head, handlers)
            inner = _Frontier(dangling=[])
            body = _build_block(
                cfg, statement.body, [head], handlers, inner
            )
            for nid in body.dangling + inner.continues:
                cfg.add_edge(nid, head)  # loop back edge
            after = [head] + inner.breaks
            if statement.orelse:
                orelse = _build_block(
                    cfg, statement.orelse, [head], handlers, loop
                )
                after = orelse.dangling + inner.breaks
            current = after
        elif isinstance(statement, ast.Try):
            handler_heads: List[int] = []
            for handler in statement.handlers:
                handler_heads.append(cfg.new_node(handler))
            try_handlers = handlers + tuple(handler_heads)
            body = _build_block(
                cfg, statement.body, current, try_handlers, loop
            )
            tails = list(body.dangling)
            if statement.orelse:
                orelse = _build_block(
                    cfg, statement.orelse, body.dangling, handlers, loop
                )
                tails = orelse.dangling
            handler_tails: List[int] = []
            for head, handler in zip(handler_heads, statement.handlers):
                caught = _build_block(
                    cfg, handler.body, [head], handlers, loop
                )
                handler_tails.extend(caught.dangling)
            current = tails + handler_tails
            if statement.finalbody:
                final = _build_block(
                    cfg, statement.finalbody, current, handlers, loop
                )
                current = final.dangling
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            head = cfg.new_node(statement)
            _link(cfg, current, head, handlers)
            body = _build_block(
                cfg, statement.body, [head], handlers, loop
            )
            current = body.dangling
        elif isinstance(statement, ast.Return):
            node = cfg.new_node(statement)
            node_obj = cfg.nodes[node]
            node_obj.exit_kind = "return"
            _link(cfg, current, node, handlers)
            cfg.add_edge(node, EXIT)
            current = []
        elif isinstance(statement, ast.Raise):
            node = cfg.new_node(statement)
            cfg.nodes[node].exit_kind = "raise"
            _link(cfg, current, node, handlers)
            cfg.add_edge(node, RAISE_EXIT)
            current = []
        elif isinstance(statement, ast.Break):
            node = cfg.new_node(statement)
            _link(cfg, current, node, handlers)
            if loop is not None:
                loop.breaks.append(node)
            current = []
        elif isinstance(statement, ast.Continue):
            node = cfg.new_node(statement)
            _link(cfg, current, node, handlers)
            if loop is not None:
                loop.continues.append(node)
            current = []
        elif isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            node = cfg.new_node(statement)
            _link(cfg, current, node, handlers)
            current = [node]
        else:
            node = cfg.new_node(statement)
            _link(cfg, current, node, handlers)
            current = [node]
    result.dangling = current
    return result


def _link(
    cfg: ControlFlowGraph,
    sources: List[int],
    target: int,
    handlers: Tuple[int, ...],
) -> None:
    """Wire ``sources`` to ``target``, plus exception edges.

    Exception edges leave from the statement *boundary* (each source),
    not from the statement node itself: if a statement raises, its
    effects — in particular a resource-acquiring binding — did not
    happen, so the handler must observe the pre-statement state.  The
    last statement of a ``try`` body needs no special casing: its
    boundary edge was added when it was wired as a target.
    """
    for source in sources:
        cfg.add_edge(source, target)
        for handler in handlers:
            cfg.add_edge(source, handler)


def _merge_loop_exits(
    result: _Frontier, *branches: _Frontier
) -> None:
    for branch in branches:
        result.breaks.extend(branch.breaks)
        result.continues.extend(branch.continues)


# ---------------------------------------------------------------------------
# Generic forward fixed-point solver
# ---------------------------------------------------------------------------

S = TypeVar("S")


def solve_forward(
    cfg: ControlFlowGraph,
    initial: S,
    bottom: S,
    transfer: Callable[[CfgNode, S], S],
    join: Callable[[S, S], S],
    equals: Callable[[S, S], bool],
) -> Dict[int, S]:
    """Run a forward dataflow analysis to fixed point.

    Returns the state *entering* each node.  ``initial`` seeds ENTRY;
    every other node starts at ``bottom``.
    """
    states: Dict[int, S] = {nid: bottom for nid in cfg.nodes}
    states[ENTRY] = initial
    # Seed with every node (ENTRY last, so it pops first): when
    # ``initial`` equals ``bottom`` no join would ever "change" a
    # successor, and a worklist seeded with ENTRY alone would never
    # visit anything.
    worklist = sorted(cfg.nodes, reverse=True)
    iterations = 0
    limit = 50 * max(1, len(cfg.nodes)) * max(1, len(cfg.nodes))
    while worklist:
        iterations += 1
        if iterations > limit:  # defensive: malformed CFG
            break
        nid = worklist.pop()
        node = cfg.nodes[nid]
        out_state = transfer(node, states[nid])
        for successor in node.successors:
            merged = join(states[successor], out_state)
            if not equals(merged, states[successor]):
                states[successor] = merged
                worklist.append(successor)
    return states


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------

#: A definition site: (name, node id of the defining statement).
Definition = Tuple[str, int]


def assigned_names(statement: ast.stmt) -> Set[str]:
    """Names (re)bound by one statement (assignment targets, loop
    variables, with-as bindings, except-as bindings, aug-assign)."""
    names: Set[str] = set()

    def target_names(target: ast.expr) -> Iterator[str]:
        for child in ast.walk(target):
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store,)
            ):
                yield child.id

    if isinstance(statement, ast.Assign):
        for target in statement.targets:
            names.update(target_names(target))
    elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
        names.update(target_names(statement.target))
    elif isinstance(statement, (ast.For, ast.AsyncFor)):
        names.update(target_names(statement.target))
    elif isinstance(statement, (ast.With, ast.AsyncWith)):
        for item in statement.items:
            if item.optional_vars is not None:
                names.update(target_names(item.optional_vars))
    elif isinstance(statement, ast.ExceptHandler):
        if statement.name:
            names.add(statement.name)
    elif isinstance(
        statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        names.add(statement.name)
    return names


def reaching_definitions(
    cfg: ControlFlowGraph,
) -> Dict[int, FrozenSet[Definition]]:
    """Classic reaching definitions over the CFG.

    Returns, for each node id, the set of ``(name, defining_node_id)``
    pairs that may reach the *entry* of that node.  Function parameters
    reach everything as ``(name, ENTRY)``.
    """
    args = cfg.function.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    for star in (args.vararg, args.kwarg):
        if star is not None:
            params.append(star.arg)
    initial: FrozenSet[Definition] = frozenset(
        (name, ENTRY) for name in params
    )

    def transfer(
        node: CfgNode, state: FrozenSet[Definition]
    ) -> FrozenSet[Definition]:
        if node.statement is None:
            return state
        killed = assigned_names(node.statement)
        if not killed:
            return state
        kept = {d for d in state if d[0] not in killed}
        kept.update((name, node.node_id) for name in killed)
        return frozenset(kept)

    return solve_forward(
        cfg,
        initial=initial,
        bottom=frozenset(),
        transfer=transfer,
        join=lambda a, b: a | b,
        equals=lambda a, b: a == b,
    )


# ---------------------------------------------------------------------------
# Value kinds and resource lifecycle
# ---------------------------------------------------------------------------


class Kind(enum.Enum):
    """Abstract classification of a local value."""

    OTHER = "other"
    LOCK = "lock"
    FILE = "file"
    RNG = "rng"
    SHARED_MEMORY = "shared-memory"
    CONNECTION = "connection"
    DISK_BYTES = "disk-bytes"
    CRC_CHECKED = "crc-checked-bytes"


#: Kinds that must never cross a process boundary (RL009).
UNPICKLABLE_KINDS: FrozenSet[Kind] = frozenset(
    {Kind.LOCK, Kind.FILE, Kind.RNG, Kind.SHARED_MEMORY}
)

#: Kinds whose values own an OS resource that must be released (RL010).
RESOURCE_KINDS: FrozenSet[Kind] = frozenset(
    {Kind.FILE, Kind.SHARED_MEMORY, Kind.CONNECTION}
)


class Resource(enum.Enum):
    """Lifecycle state of an acquired resource."""

    OPEN = "open"
    CLOSED = "closed"
    ESCAPED = "escaped"
    MAYBE_OPEN = "maybe-open"  # join of OPEN with CLOSED/ESCAPED


def _join_resource(a: Resource, b: Resource) -> Resource:
    if a is b:
        return a
    if Resource.ESCAPED in (a, b):
        # Escaping on any path transfers ownership; not our leak.
        return Resource.ESCAPED
    return Resource.MAYBE_OPEN


_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
     "Event", "Barrier"}
)
_RNG_CONSTRUCTORS = frozenset({"Random", "default_rng", "Generator"})
_SHM_CONSTRUCTORS = frozenset({"SharedMemory", "ShareableList"})
_READ_METHODS = frozenset({"read_bytes", "read", "recv_bytes"})
_CLOSE_METHODS = frozenset({"close", "unlink", "shutdown", "release"})


def classify_call(node: ast.Call) -> Kind:
    """The :class:`Kind` a call expression's result has, if special."""
    parts: List[str] = []
    current: ast.AST = node.func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    if not parts:
        return Kind.OTHER
    last = parts[0]  # attribute chains were collected innermost-last
    if last in _LOCK_CONSTRUCTORS:
        return Kind.LOCK
    if last in _RNG_CONSTRUCTORS:
        return Kind.RNG
    if last in _SHM_CONSTRUCTORS:
        return Kind.SHARED_MEMORY
    if last == "open":
        return Kind.FILE
    if last == "socket":
        return Kind.FILE
    if last in _READ_METHODS:
        return Kind.DISK_BYTES
    return Kind.OTHER


@dataclass(frozen=True)
class Acquisition:
    """One tracked resource acquisition site."""

    name: str
    kind: Kind
    line: int
    column: int


@dataclass
class ValueState:
    """Abstract state: name -> kind, acquisition -> lifecycle.

    ``reachable`` distinguishes the solver's bottom element (a node not
    yet reached along any path) from a genuinely empty state: joining
    with bottom must be the identity, not a decay-to-OTHER.
    """

    kinds: Dict[str, Kind] = field(default_factory=dict)
    resources: Dict[Acquisition, Resource] = field(default_factory=dict)
    reachable: bool = True

    def copy(self) -> "ValueState":
        """Independent copy of this state."""
        return ValueState(
            dict(self.kinds), dict(self.resources), self.reachable
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueState):
            return NotImplemented
        return (
            self.kinds == other.kinds
            and self.resources == other.resources
            and self.reachable == other.reachable
        )


def join_states(a: ValueState, b: ValueState) -> ValueState:
    """Pointwise join: conflicting kinds decay to OTHER (but a
    CRC-checked/raw-bytes conflict stays raw — the unverified path is
    the one that matters), resources join via :func:`_join_resource`.
    Bottom (unreachable) is the identity element."""
    if not a.reachable:
        return b.copy()
    if not b.reachable:
        return a.copy()
    kinds: Dict[str, Kind] = {}
    for name in set(a.kinds) | set(b.kinds):
        ka = a.kinds.get(name, Kind.OTHER)
        kb = b.kinds.get(name, Kind.OTHER)
        if ka is kb:
            kinds[name] = ka
        elif {ka, kb} == {Kind.DISK_BYTES, Kind.CRC_CHECKED}:
            kinds[name] = Kind.DISK_BYTES
        else:
            kinds[name] = Kind.OTHER
    resources: Dict[Acquisition, Resource] = {}
    for acq in set(a.resources) | set(b.resources):
        if acq in a.resources and acq in b.resources:
            resources[acq] = _join_resource(
                a.resources[acq], b.resources[acq]
            )
        else:
            # Acquired on one path only: keep that path's state.
            resources[acq] = a.resources.get(acq) or b.resources[acq]
    return ValueState(kinds, resources)


def iter_header_nodes(statement: ast.stmt) -> Iterator[ast.AST]:
    """AST nodes of a statement's *own* expressions, excluding nested
    statement bodies.

    Compound statements (``if``, ``while``, ``for``, ``try`` handlers,
    ``with``) are CFG nodes whose ``ast.walk`` would also visit the
    statements nested inside them — but those statements have CFG nodes
    of their own, so applying their effects at the head would count
    everything twice (and smear branch-local effects onto both paths).
    """
    if isinstance(statement, (ast.If, ast.While)):
        yield from ast.walk(statement.test)
    elif isinstance(statement, (ast.For, ast.AsyncFor)):
        yield from ast.walk(statement.iter)
    elif isinstance(statement, ast.ExceptHandler):
        if statement.type is not None:
            yield from ast.walk(statement.type)
    elif isinstance(statement, (ast.With, ast.AsyncWith)):
        for item in statement.items:
            yield from ast.walk(item.context_expr)
    elif isinstance(statement, ast.Try):
        return
    elif isinstance(
        statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return
    else:
        yield from ast.walk(statement)


def _names_in(expr: ast.AST) -> Set[str]:
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


class ValueAnalysis:
    """Runs the kind/resource analysis over one function's CFG.

    After :meth:`run`, ``entry_states[nid]`` is the :class:`ValueState`
    at the *entry* of CFG node ``nid`` and :attr:`exit_leaks` lists
    ``(exit_node, acquisition)`` pairs where a tracked resource was
    (maybe) still open at an explicit ``return``/``raise`` or at
    function fall-through.
    """

    def __init__(self, function: FunctionNode) -> None:
        self.function = function
        self.cfg = build_cfg(function)
        self.entry_states: Dict[int, ValueState] = {}
        #: Interprocedural hook: ``(node_id, name) -> Acquisition``.  A
        #: rule that resolved a call (``parent, worker = self._spawn()``)
        #: to an in-project function returning fresh resources registers
        #: the acquisition here and re-runs the analysis; the transfer
        #: function applies it after the statement's own effects.
        self.interprocedural_acquisitions: Dict[
            Tuple[int, str], Acquisition
        ] = {}

    # -- transfer -----------------------------------------------------------

    def transfer(self, node: CfgNode, state: ValueState) -> ValueState:
        """Apply one statement to the abstract state."""
        statement = node.statement
        state = state.copy()
        if statement is None:
            return state
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            # with-managed resources are closed by construction; names
            # bound by `as` are OTHER/CLOSED from our perspective.
            for item in statement.items:
                if item.optional_vars is not None:
                    for name in assigned_names(statement):
                        state.kinds[name] = Kind.OTHER
            return state
        self._apply_calls(statement, state)
        if isinstance(statement, ast.Assign) and len(
            statement.targets
        ) == 1:
            self._apply_assign(
                statement.targets[0], statement.value, statement, state
            )
        elif isinstance(statement, ast.AnnAssign) and (
            statement.value is not None
        ):
            self._apply_assign(
                statement.target, statement.value, statement, state
            )
        else:
            for name in assigned_names(statement):
                state.kinds[name] = Kind.OTHER
        if self.interprocedural_acquisitions:
            for (nid, name), acquisition in (
                self.interprocedural_acquisitions.items()
            ):
                if nid == node.node_id:
                    state.kinds[name] = acquisition.kind
                    state.resources[acquisition] = Resource.OPEN
        return state

    def _apply_assign(
        self,
        target: ast.expr,
        value: ast.expr,
        statement: ast.stmt,
        state: ValueState,
    ) -> None:
        # Rebinding a name kills its old kind first.
        for name in assigned_names(statement):
            state.kinds[name] = Kind.OTHER
        if isinstance(target, ast.Name):
            if isinstance(value, ast.Call):
                kind = classify_call(value)
                state.kinds[target.id] = kind
                if kind in RESOURCE_KINDS:
                    acquisition = Acquisition(
                        target.id, kind, value.lineno, value.col_offset
                    )
                    state.resources[acquisition] = Resource.OPEN
            elif isinstance(value, ast.Name):
                state.kinds[target.id] = state.kinds.get(
                    value.id, Kind.OTHER
                )
                # Aliasing transfers ownership out of our view.
                self._mark(state, value.id, Resource.ESCAPED)
        elif isinstance(target, ast.Tuple) and isinstance(value, ast.Call):
            # `a, b = Pipe()` — both ends are connections to track.
            kind = self._tuple_call_kind(value)
            if kind is not None:
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        state.kinds[element.id] = kind
                        state.resources[
                            Acquisition(
                                element.id,
                                kind,
                                value.lineno,
                                value.col_offset,
                            )
                        ] = Resource.OPEN
        elif not isinstance(target, ast.Name):
            # Storing into self.x / container[x]: sources escape.
            for name in _names_in(value):
                self._mark(state, name, Resource.ESCAPED)

    @staticmethod
    def _tuple_call_kind(value: ast.Call) -> Optional[Kind]:
        parts: List[str] = []
        current: ast.AST = value.func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
        if parts and parts[0] in ("Pipe", "socketpair"):
            return Kind.CONNECTION
        return None

    def _apply_calls(self, statement: ast.stmt, state: ValueState) -> None:
        for node in iter_header_nodes(statement):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                receiver = func.value.id
                if func.attr in _CLOSE_METHODS:
                    self._mark(state, receiver, Resource.CLOSED)
                    continue
            # zlib.crc32(payload) upgrades raw disk bytes.
            target_parts: List[str] = []
            current: ast.AST = func
            while isinstance(current, ast.Attribute):
                target_parts.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name):
                target_parts.append(current.id)
            if target_parts and target_parts[0] == "crc32":
                for arg in node.args:
                    for name in _names_in(arg):
                        if state.kinds.get(name) is Kind.DISK_BYTES:
                            state.kinds[name] = Kind.CRC_CHECKED
                continue
            # Passing a tracked resource to any other call transfers
            # ownership (helper may close/register it) — escape.
            callee_name = target_parts[0] if target_parts else ""
            if callee_name in _CLOSE_METHODS:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for name in _names_in(arg):
                    if self._holds_resource(state, name):
                        self._mark(state, name, Resource.ESCAPED)
        # return value / yield expressions escape their names too.
        if isinstance(statement, ast.Return) and statement.value is not None:
            for name in _names_in(statement.value):
                self._mark(state, name, Resource.ESCAPED)
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, (ast.Yield, ast.YieldFrom)
        ):
            for name in _names_in(statement.value):
                self._mark(state, name, Resource.ESCAPED)

    @staticmethod
    def _holds_resource(state: ValueState, name: str) -> bool:
        return any(
            acq.name == name and resource is not Resource.CLOSED
            for acq, resource in state.resources.items()
        )

    @staticmethod
    def _mark(state: ValueState, name: str, new: Resource) -> None:
        for acq in list(state.resources):
            if acq.name == name:
                if state.resources[acq] is Resource.ESCAPED and (
                    new is Resource.CLOSED
                ):
                    continue
                state.resources[acq] = new

    # -- driving ------------------------------------------------------------

    def run(self) -> "ValueAnalysis":
        """Solve to fixed point; then inspect :attr:`entry_states`."""
        self.entry_states = solve_forward(
            self.cfg,
            initial=ValueState(),
            bottom=ValueState(reachable=False),
            transfer=self.transfer,
            join=join_states,
            equals=lambda a, b: a == b,
        )
        return self

    def state_before(self, node_id: int) -> ValueState:
        """State at the entry of one CFG node."""
        return self.entry_states.get(node_id, ValueState())

    def exit_leaks(self) -> List[Tuple[CfgNode, Acquisition]]:
        """Resources (maybe) open at explicit exits.

        Reported at ``return`` statements, explicit ``raise``
        statements, and function fall-through — NOT at implicit
        exception propagation, which nearly every statement can cause
        and which ``with`` blocks already guard in idiomatic code.
        """
        leaks: List[Tuple[CfgNode, Acquisition]] = []
        for node in self.cfg.statement_nodes():
            if node.exit_kind is None:
                continue
            state = self.transfer(node, self.state_before(node.node_id))
            for acq, resource in state.resources.items():
                if resource in (Resource.OPEN, Resource.MAYBE_OPEN):
                    leaks.append((node, acq))
        # Fall-through exit: join of all EXIT predecessors that are not
        # explicit returns.
        for pred in self.cfg.predecessors(EXIT):
            node = self.cfg.nodes[pred]
            if node.exit_kind is not None or node.statement is None:
                continue
            state = self.transfer(node, self.state_before(pred))
            for acq, resource in state.resources.items():
                if resource in (Resource.OPEN, Resource.MAYBE_OPEN):
                    leaks.append((node, acq))
        deduped: Dict[Tuple[int, Acquisition], Tuple[CfgNode, Acquisition]]
        deduped = {}
        for node, acq in leaks:
            deduped[(node.node_id, acq)] = (node, acq)
        return list(deduped.values())
