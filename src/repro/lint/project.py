"""Whole-program view for reprolint: symbol table and call graph.

The per-file rules (RL001-RL008) see one module's AST at a time.  The
process-boundary, resource-lifecycle, durability, and linearity rules
(RL009-RL013) need to answer questions that span functions and modules
— "what does ``Process(target=...)`` actually run?", "does this
``# linear`` merge call a helper that truncates?" — so the runner
builds one :class:`ProjectIndex` per lint run:

* a **symbol table** of every function and method, keyed by qualified
  name (``repro.sketch.dcs.DistinctCountSketch.merge``);
* a per-module **import map** (local binding -> dotted origin), so
  cross-module calls resolve to their definition site;
* a **call graph** (caller qualname -> callee qualnames) built by
  resolving each call expression against local scope, enclosing class,
  module bindings, and the import maps, in that order.

Resolution is deliberately best-effort and *unambiguous-only*: a bare
name that matches several definitions across the project resolves to
nothing rather than to all of them — for invariant checking, a false
edge is worse than a missing one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionSymbol:
    """One function or method definition known to the project.

    Attributes:
        qualname: fully qualified dotted name (module + class + name).
        module: dotted module the definition lives in.
        name: bare function name.
        owner: enclosing class name, or ``""`` for module-level
            functions (nested functions carry their parent function's
            name chain in ``qualname`` but an empty ``owner``).
        path: source file of the definition.
        node: the ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``.
    """

    qualname: str
    module: str
    name: str
    owner: str
    path: str
    node: FunctionNode


@dataclass
class ModuleSymbols:
    """Per-module symbol information."""

    module: str
    path: str
    tree: ast.Module
    #: local binding -> dotted origin ("np" -> "numpy",
    #: "CheckpointStore" -> "repro.resilience.checkpoint.CheckpointStore").
    imports: Dict[str, str] = field(default_factory=dict)
    #: names defined at module top level (functions, classes, constants).
    toplevel: Set[str] = field(default_factory=set)


def _absolute_module(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Resolve a (possibly relative) from-import to a dotted module.

    ``from . import x`` / ``from .sibling import x`` resolve against
    the *containing package*: for a plain module that is the dotted
    name minus its last component, for a package ``__init__`` it is the
    module name itself.
    """
    if node.level == 0:
        return node.module
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if node.level - 1 > len(parts):
        return None
    if node.level > 1:
        parts = parts[: len(parts) - (node.level - 1)]
    if node.module:
        return ".".join(parts + [node.module]) if parts else node.module
    return ".".join(parts)


def _import_bindings(
    module: str, tree: ast.Module, is_package: bool = False
) -> Dict[str, str]:
    """Map every import-bound name in a module to its dotted origin."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings[bound] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            source = _absolute_module(module, is_package, node)
            if source is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                bindings[bound] = f"{source}.{alias.name}"
    return bindings


class CallGraph:
    """Directed call graph over :class:`FunctionSymbol` qualnames."""

    def __init__(self) -> None:
        self._edges: Dict[str, Set[str]] = {}
        self._reverse: Dict[str, Set[str]] = {}

    def add_edge(self, caller: str, callee: str) -> None:
        """Record that ``caller`` contains a resolved call to ``callee``."""
        self._edges.setdefault(caller, set()).add(callee)
        self._reverse.setdefault(callee, set()).add(caller)

    def callees(self, qualname: str) -> Set[str]:
        """Functions directly called by ``qualname`` (resolved only)."""
        return set(self._edges.get(qualname, set()))

    def callers(self, qualname: str) -> Set[str]:
        """Functions that directly call ``qualname``."""
        return set(self._reverse.get(qualname, set()))

    def reachable_from(self, qualname: str, limit: int = 1000) -> Set[str]:
        """Transitive callee closure of ``qualname`` (excluding itself
        unless it participates in a cycle)."""
        seen: Set[str] = set()
        frontier = list(self._edges.get(qualname, set()))
        while frontier and len(seen) < limit:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._edges.get(current, set()))
        return seen

    def edge_count(self) -> int:
        """Total number of resolved call edges."""
        return sum(len(targets) for targets in self._edges.values())


class ProjectIndex:
    """Symbol table + call graph for one lint run.

    Build with :func:`build_project`; rules reach it through
    ``LintContext.project``.
    """

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionSymbol] = {}
        self.modules: Dict[str, ModuleSymbols] = {}
        self.call_graph = CallGraph()
        self._by_bare_name: Dict[str, List[str]] = {}
        #: call expressions whose target could not be resolved.
        self.unresolved_calls = 0

    # -- lookups ------------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionSymbol]:
        """The symbol with this qualified name, if known."""
        return self.functions.get(qualname)

    def functions_named(self, bare_name: str) -> List[FunctionSymbol]:
        """Every function in the project with this bare name."""
        return [
            self.functions[qualname]
            for qualname in self._by_bare_name.get(bare_name, [])
        ]

    def module(self, dotted: str) -> Optional[ModuleSymbols]:
        """Per-module symbols for a dotted module name."""
        return self.modules.get(dotted)

    def methods_of(self, module: str, owner: str) -> List[FunctionSymbol]:
        """Every method of class ``owner`` defined in ``module``."""
        return [
            symbol
            for symbol in self.functions.values()
            if symbol.module == module and symbol.owner == owner
        ]

    # -- construction helpers ----------------------------------------------

    def _add_function(self, symbol: FunctionSymbol) -> None:
        self.functions[symbol.qualname] = symbol
        self._by_bare_name.setdefault(symbol.name, []).append(
            symbol.qualname
        )

    def resolve_call(
        self, caller_module: str, caller_owner: str, callee: str
    ) -> Optional[FunctionSymbol]:
        """Resolve a dotted call expression to a project function.

        ``callee`` is the dotted rendering of the call target
        (``"helper"``, ``"self._spawn"``, ``"serialize.loads"``,
        ``"os.replace"`` ...).  Resolution tries, in order: methods on
        the caller's own class (``self.x`` / ``cls.x``), functions in
        the caller's module, imported names, and finally a project-wide
        unambiguous bare-name match.  Returns ``None`` for calls into
        the standard library or ambiguous names.
        """
        parts = callee.split(".")
        symbols = self.modules.get(caller_module)
        # self.method() / cls.method() on the enclosing class.
        if len(parts) == 2 and parts[0] in ("self", "cls") and caller_owner:
            qualname = f"{caller_module}.{caller_owner}.{parts[1]}"
            if qualname in self.functions:
                return self.functions[qualname]
            return None
        if len(parts) == 1:
            qualname = f"{caller_module}.{parts[0]}"
            if qualname in self.functions:
                return self.functions[qualname]
            if symbols is not None and parts[0] in symbols.imports:
                return self._resolve_dotted(symbols.imports[parts[0]])
            candidates = self._by_bare_name.get(parts[0], [])
            if len(candidates) == 1:
                return self.functions[candidates[0]]
            return None
        # module_alias.func() or imported_class.method().
        if symbols is not None and parts[0] in symbols.imports:
            origin = symbols.imports[parts[0]]
            return self._resolve_dotted(".".join([origin] + parts[1:]))
        return self._resolve_dotted(callee)

    def _resolve_dotted(self, dotted: str) -> Optional[FunctionSymbol]:
        """Resolve a fully-dotted name, tolerating re-export hops."""
        if dotted in self.functions:
            return self.functions[dotted]
        # "package.Class" re-exported from "package.module.Class":
        # fall back to an unambiguous bare-name match on the last part.
        bare = dotted.split(".")[-1]
        candidates = self._by_bare_name.get(bare, [])
        if len(candidates) == 1:
            return self.functions[candidates[0]]
        return None


def _dotted_call_target(node: ast.AST) -> Optional[str]:
    """Render a call target as a dotted string (mirror of rules._dotted)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(
    module: str, path: str, tree: ast.Module
) -> Iterator[FunctionSymbol]:
    """Yield every function/method in a module with its qualname.

    Nested functions get ``outer.<locals>.inner``-free simple chains
    (``outer.inner``) — good enough for linting, where the chain only
    needs to be unique and human-readable.
    """

    def visit(
        node: ast.AST, prefix: str, owner: str
    ) -> Iterator[FunctionSymbol]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                yield FunctionSymbol(
                    qualname=qualname,
                    module=module,
                    name=child.name,
                    owner=owner,
                    path=path,
                    node=child,
                )
                yield from visit(child, qualname, "")
            elif isinstance(child, ast.ClassDef):
                yield from visit(
                    child, f"{prefix}.{child.name}", child.name
                )
            elif isinstance(child, (ast.If, ast.Try, ast.With)):
                yield from visit(child, prefix, owner)

    yield from visit(tree, module, "")


def build_project(
    sources: Sequence[Tuple[str, str, ast.Module]],
) -> ProjectIndex:
    """Build the whole-program index from parsed modules.

    Args:
        sources: ``(path, dotted_module, tree)`` triples — exactly what
            the runner already holds after parsing.
    """
    project = ProjectIndex()
    for path, module, tree in sources:
        is_package = Path(path).name == "__init__.py"
        project.modules[module] = ModuleSymbols(
            module=module,
            path=path,
            tree=tree,
            imports=_import_bindings(module, tree, is_package),
            toplevel={
                child.name
                for child in tree.body
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            },
        )
        for symbol in iter_functions(module, path, tree):
            project._add_function(symbol)
    # Second pass: resolve call expressions into edges.
    for symbol in list(project.functions.values()):
        for node in ast.walk(symbol.node):
            if not isinstance(node, ast.Call):
                continue
            target = _dotted_call_target(node.func)
            if target is None:
                project.unresolved_calls += 1
                continue
            callee = project.resolve_call(
                symbol.module, symbol.owner, target
            )
            if callee is None:
                project.unresolved_calls += 1
                continue
            project.call_graph.add_edge(symbol.qualname, callee.qualname)
    return project
