"""reprolint: AST-based invariant linting for the repro library.

The Distinct-Count Sketch reproduction rests on invariants the paper
proves but Python cannot enforce at runtime:

* **delete-resistance** needs exact integer counter arithmetic in the
  count-signature hot path (Section 3 — a matched insert/delete must
  leave the sketch bit-identical, which float rounding would break);
* **reproducibility** needs every random draw to flow through an
  explicitly-seeded generator derived via
  :func:`repro.hashing.seeds.derive_seed` (merges rely on bit-identical
  hash structure across machines);
* **epoch semantics** forbid wall-clock reads inside algorithm code —
  stream position, not time-of-day, drives every decision.

This package turns those invariants into machine-checked rules.  It is
a small, dependency-free rule engine: each rule is an AST visitor
registered under an ``RLxxx`` identifier with a severity, and the
runner applies every selected rule to every file, honouring inline
``# reprolint: disable=RLxxx`` pragmas.

Run it as ``python -m repro.lint src/repro`` or ``repro-ddos lint``;
see :mod:`repro.lint.rules` for the rule catalogue and ``docs/dev.md``
for the invariant each rule protects.
"""

from .baseline import apply_baseline, read_baseline, write_baseline
from .cache import LintCache, ruleset_fingerprint
from .dataflow import ControlFlowGraph, ValueAnalysis, build_cfg
from .engine import (
    LintContext,
    LintRunner,
    ModuleIndex,
    Rule,
    Severity,
    Violation,
    all_rules,
    get_rule,
    register,
)
from .project import CallGraph, ProjectIndex, build_project
from .reporters import JsonReporter, Reporter, SarifReporter, TextReporter
from . import rules as _rules  # noqa: F401  (imports register the rules)
from . import program_rules as _program_rules  # noqa: F401  (RL009-RL013)

__all__ = [
    "CallGraph",
    "ControlFlowGraph",
    "JsonReporter",
    "LintCache",
    "LintContext",
    "LintRunner",
    "ModuleIndex",
    "ProjectIndex",
    "Reporter",
    "Rule",
    "SarifReporter",
    "Severity",
    "TextReporter",
    "ValueAnalysis",
    "Violation",
    "all_rules",
    "apply_baseline",
    "build_cfg",
    "build_project",
    "get_rule",
    "read_baseline",
    "register",
    "ruleset_fingerprint",
    "write_baseline",
]
