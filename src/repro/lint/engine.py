"""The reprolint rule engine: contexts, registry, pragmas, and runner.

Design:

* a :class:`Rule` inspects one module's AST and yields
  :class:`Violation` objects; rules never mutate anything;
* rules are registered in a global registry keyed by their ``RLxxx``
  identifier (:func:`register`), so reporters and the CLI can enumerate
  them;
* the :class:`LintRunner` walks the requested paths, parses every
  ``*.py`` file once, builds a :class:`ModuleIndex` (rules that check
  cross-module facts, like the public-API rule, resolve re-exports
  through it), applies the selected rules, and filters out violations
  suppressed by inline pragmas.

Pragmas: a line containing ``# reprolint: disable=RL001`` (or a
comma-separated list) suppresses those rules' violations on that line;
``# reprolint: disable-file=RL001`` anywhere in a file suppresses them
for the whole file.  Allowlisting is deliberately *visible in the
source* rather than hidden in a config file.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from .project import ProjectIndex, build_project

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import LintCache

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Z0-9,\s]+)"
)


class Severity(enum.Enum):
    """How seriously a violation is taken.

    ``ERROR`` violations fail the gate (non-zero exit); ``WARNING``
    violations are reported but do not affect the exit code.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering: by file, then position, then rule."""
        return (self.path, self.line, self.column, self.rule_id)


@dataclass
class ModuleInfo:
    """A parsed module known to the runner."""

    path: str
    module: str
    source: str
    tree: ast.Module


class ModuleIndex:
    """Dotted-module-name -> :class:`ModuleInfo` lookup for a lint run.

    Rules that resolve re-exports (``from .dcs import DistinctCountSketch``
    in an ``__init__.py``) use this to find the definition site.
    """

    def __init__(self) -> None:
        self._modules: Dict[str, ModuleInfo] = {}

    def add(self, info: ModuleInfo) -> None:
        """Register a parsed module."""
        self._modules[info.module] = info

    def get(self, module: str) -> Optional[ModuleInfo]:
        """The module's info, or ``None`` if it was not part of the run."""
        return self._modules.get(module)

    def __contains__(self, module: str) -> bool:
        return module in self._modules

    def modules(self) -> List[str]:
        """All dotted module names in the index, sorted."""
        return sorted(self._modules)


@dataclass
class LintContext:
    """Everything a rule gets to see about one module."""

    path: str
    module: str
    source: str
    tree: ast.Module
    index: ModuleIndex = field(default_factory=ModuleIndex)
    #: whole-program symbol table + call graph; populated by the runner
    #: when any selected rule sets ``requires_project``.
    project: Optional[ProjectIndex] = None

    @property
    def is_package_init(self) -> bool:
        """True when this module is a package ``__init__.py``."""
        return Path(self.path).name == "__init__.py"

    def in_module(self, *prefixes: str) -> bool:
        """True when the module equals or lives under any given prefix."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`rule_id`, :attr:`title`, :attr:`invariant`
    (the paper-level property the rule protects) and implement
    :meth:`check`.
    """

    rule_id: str = "RL000"
    title: str = ""
    invariant: str = ""
    severity: Severity = Severity.ERROR
    #: True when the rule needs ``LintContext.project`` (the
    #: whole-program index); the runner only builds it on demand.
    requires_project: bool = False
    #: True when the rule's verdict on one file can change because a
    #: *different* file changed (re-export resolution, call graph).
    #: The incremental cache keys such rules on the whole-project hash.
    cross_file: bool = False

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Yield every violation of this rule in ``context``'s module."""
        raise NotImplementedError

    def violation(
        self,
        context: LintContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule_id=self.rule_id,
            severity=severity or self.severity,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_class.rule_id
    if not re.fullmatch(r"RL\d{3}", rule_id):
        raise ValueError(f"rule id must match RLxxx, got {rule_id!r}")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    """Look up one rule class by id; raises ``KeyError`` if unknown."""
    return _REGISTRY[rule_id]


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from a file path.

    Uses the path components from the last ``repro`` directory onward
    (the layout this linter ships with); falls back to the file stem
    for paths outside a ``repro`` tree (e.g. test fixtures).
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "repro":
            return ".".join(parts[anchor:])
    return parts[-1] if parts else str(path)


def _file_pragmas(source: str) -> Tuple[Dict[int, List[str]], List[str]]:
    """Extract line-scoped and file-scoped pragma rule ids."""
    per_line: Dict[int, List[str]] = {}
    whole_file: List[str] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if not match:
            continue
        scope, id_list = match.groups()
        rule_ids = [part.strip() for part in id_list.split(",") if part.strip()]
        if scope == "disable-file":
            whole_file.extend(rule_ids)
        else:
            per_line.setdefault(line_number, []).extend(rule_ids)
    return per_line, whole_file


def _suppressed(
    violation: Violation,
    per_line: Dict[int, List[str]],
    whole_file: List[str],
) -> bool:
    if violation.rule_id in whole_file:
        return True
    return violation.rule_id in per_line.get(violation.line, [])


class LintRunner:
    """Applies a set of rules to a set of files.

    Args:
        select: rule ids to run (default: all registered rules).
        ignore: rule ids to skip.
    """

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> None:
        chosen = list(select) if select else [r.rule_id for r in all_rules()]
        unknown = [rid for rid in chosen if rid not in _REGISTRY]
        unknown += [rid for rid in (ignore or []) if rid not in _REGISTRY]
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        skip = set(ignore or [])
        self.rules: List[Rule] = [
            get_rule(rid)() for rid in sorted(chosen) if rid not in skip
        ]

    # -- input collection ---------------------------------------------------

    @staticmethod
    def collect_files(paths: Iterable[str]) -> List[Path]:
        """Expand files/directories into a sorted list of ``*.py`` files."""
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
            else:
                raise FileNotFoundError(
                    f"not a Python file or directory: {raw}"
                )
        return files

    # -- running ------------------------------------------------------------

    def run_paths(
        self, paths: Iterable[str], cache: Optional["LintCache"] = None
    ) -> List[Violation]:
        """Lint every ``*.py`` file under ``paths``.

        With a :class:`~repro.lint.cache.LintCache`, unchanged files
        reuse their cached verdicts (see :mod:`repro.lint.cache`); the
        cache is saved back to disk before returning.
        """
        files = self.collect_files(paths)
        sources = []
        for file_path in files:
            sources.append((str(file_path), file_path.read_text()))
        violations = self.run_sources(sources, cache=cache)
        if cache is not None:
            cache.save()
        return violations

    def run_sources(
        self,
        sources: Sequence[Tuple[str, str]],
        cache: Optional["LintCache"] = None,
    ) -> List[Violation]:
        """Lint ``(path, source_text)`` pairs (the testable core)."""
        from .cache import file_digest, project_digest

        local_rules = [r for r in self.rules if not r.cross_file]
        cross_rules = [r for r in self.rules if r.cross_file]
        digests = {path: file_digest(source) for path, source in sources}
        project_hash = project_digest(sorted(digests.items()))
        cached_local: Dict[str, Optional[List[Violation]]] = {}
        cached_cross: Dict[str, Optional[List[Violation]]] = {}
        if cache is not None:
            cache.prune([path for path, _ in sources])
            all_hit = True
            for path, _ in sources:
                hit_local = cache.lookup_local(path, digests[path])
                hit_cross: Optional[List[Violation]] = []
                if cross_rules:
                    hit_cross = cache.lookup_cross(
                        path, digests[path], project_hash
                    )
                cached_local[path] = hit_local
                cached_cross[path] = hit_cross
                if hit_local is None or hit_cross is None:
                    all_hit = False
            if all_hit:
                # Nothing changed anywhere: replay verdicts without
                # parsing a single file.
                violations = [
                    violation
                    for path, _ in sources
                    for violation in (
                        (cached_local[path] or [])
                        + (cached_cross[path] or [])
                    )
                ]
                violations.sort(key=Violation.sort_key)
                return violations
        index = ModuleIndex()
        contexts: List[LintContext] = []
        violations = []
        syntax_errors: Dict[str, List[Violation]] = {}
        for path, source in sources:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as error:
                broken = Violation(
                    rule_id="RL000",
                    severity=Severity.ERROR,
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                    message=f"syntax error: {error.msg}",
                )
                violations.append(broken)
                syntax_errors.setdefault(path, []).append(broken)
                continue
            info = ModuleInfo(
                path=path,
                module=module_name_for(Path(path)),
                source=source,
                tree=tree,
            )
            index.add(info)
            contexts.append(
                LintContext(
                    path=path,
                    module=info.module,
                    source=source,
                    tree=tree,
                    index=index,
                )
            )
        if any(rule.requires_project for rule in self.rules):
            project = build_project(
                [(c.path, c.module, c.tree) for c in contexts]
            )
            for context in contexts:
                context.project = project
        for context in contexts:
            per_line, whole_file = _file_pragmas(context.source)

            def apply(rules: List[Rule]) -> List[Violation]:
                found: List[Violation] = []
                for rule in rules:
                    for violation in rule.check(context):
                        if not _suppressed(violation, per_line, whole_file):
                            found.append(violation)
                return found

            local = cached_local.get(context.path)
            if local is None:
                local = apply(local_rules)
            cross = cached_cross.get(context.path)
            if cross is None:
                cross = apply(cross_rules)
            violations.extend(local)
            violations.extend(cross)
            if cache is not None:
                cache.store(
                    context.path,
                    digests[context.path],
                    project_hash,
                    local,
                    cross,
                )
        if cache is not None:
            for path, broken in syntax_errors.items():
                cache.store(path, digests[path], project_hash, broken, [])
        violations.sort(key=Violation.sort_key)
        return violations

    @staticmethod
    def error_count(violations: Sequence[Violation]) -> int:
        """Number of gate-failing (``ERROR`` severity) violations."""
        return sum(
            1 for v in violations if v.severity is Severity.ERROR
        )
