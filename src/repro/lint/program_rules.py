"""Whole-program rules RL009-RL014: process, resource, durability.

These rules consume the :mod:`repro.lint.project` symbol table / call
graph and the :mod:`repro.lint.dataflow` abstract interpretation.  Each
protects an invariant that PR 3 (multiprocess sharding) and PR 4
(WAL + checkpoints) introduced and that no per-file AST rule can see:

* **RL009** — nothing unpicklable crosses a process boundary;
* **RL010** — acquired OS resources reach ``close()``/``unlink()`` on
  every explicit path;
* **RL011** — atomic writes follow write→flush→fsync→rename→dirsync,
  and disk bytes are CRC-verified before deserialization;
* **RL012** — supervision-critical exceptions are never swallowed;
* **RL013** — ``# linear``-marked functions stay exactly linear;
* **RL014** — ``SharedMemory(create=True)`` segments reach
  ``unlink()`` (``close()`` alone leaves them in ``/dev/shm``).
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from .dataflow import (
    Acquisition,
    Kind,
    UNPICKLABLE_KINDS,
    ValueAnalysis,
    ValueState,
    classify_call,
    iter_header_nodes,
)
from .engine import LintContext, Rule, Severity, Violation, register
from .project import FunctionSymbol, ProjectIndex

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _dotted(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as a dotted string."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _iter_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _marker_present(
    node: FunctionNode, lines: List[str], marker: str
) -> bool:
    """Marker on the line above ``def`` or any signature line."""
    if not node.body:
        return False
    start = max(0, node.lineno - 2)
    end = min(len(lines), node.body[0].lineno - 1)
    if end <= start:
        end = min(len(lines), start + 1)
    return any(marker in line for line in lines[start:end])


def _free_names(function: FunctionNode) -> Set[str]:
    """Names a nested function reads but does not bind (closure vars)."""
    bound: Set[str] = set()
    args = function.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        bound.add(arg.arg)
    for star in (args.vararg, args.kwarg):
        if star is not None:
            bound.add(star.arg)
    loaded: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
    return loaded - bound


class ProgramRule(Rule):
    """Base for rules that need the whole-program index."""

    requires_project = True
    cross_file = True

    def analyses(
        self, context: LintContext
    ) -> Iterator[Tuple[FunctionNode, ValueAnalysis]]:
        """One solved :class:`ValueAnalysis` per function in the module."""
        for function in _iter_functions(context.tree):
            yield function, ValueAnalysis(function).run()


@register
class ProcessBoundaryRule(ProgramRule):
    """RL009: nothing unpicklable crosses a process boundary.

    Invariant (Section 3 merge linearity, PR 3 sharding): a worker's
    sketch merges bit-exactly only because everything that reaches it
    travels as plain data.  A lock, open handle, or live RNG object
    shipped through ``Connection.send`` or captured into a spawn target
    either fails to pickle at runtime (spawn) or silently *diverges*
    after fork (a forked RNG replays the parent's stream; a forked lock
    deadlocks).  This rule tracks value kinds through each function and
    flags banned kinds at ``send(...)`` / ``Process(...)`` sites, plus
    lambda targets and closures over banned values.
    """

    rule_id = "RL009"
    title = "no unpicklable state across process boundaries"
    invariant = "workers receive plain data only (Section 3 linearity)"

    SEND_METHODS: FrozenSet[str] = frozenset({"send", "put"})
    SPAWN_CALLS: FrozenSet[str] = frozenset({"Process", "Pool"})

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Flag banned kinds at send/spawn sites in every function."""
        if context.in_module("repro.lint"):
            return
        for function, analysis in self.analyses(context):
            yield from self._check_function(context, function, analysis)

    def _check_function(
        self,
        context: LintContext,
        function: FunctionNode,
        analysis: ValueAnalysis,
    ) -> Iterator[Violation]:
        nested = {
            child.name: child
            for child in ast.walk(function)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not function
        }
        for cfg_node in analysis.cfg.statement_nodes():
            statement = cfg_node.statement
            if statement is None:
                continue
            state = analysis.state_before(cfg_node.node_id)
            for call in iter_header_nodes(statement):
                if not isinstance(call, ast.Call):
                    continue
                yield from self._check_send(context, call, state)
                yield from self._check_spawn(
                    context, call, state, nested, function
                )

    def _banned_kind(
        self, expr: ast.expr, state: ValueState
    ) -> Optional[Tuple[str, Kind]]:
        """A (name, kind) in ``expr`` that must not cross the boundary."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                kind = state.kinds.get(node.id, Kind.OTHER)
                if kind in UNPICKLABLE_KINDS:
                    return node.id, kind
            elif isinstance(node, ast.Call):
                kind = classify_call(node)
                if kind in UNPICKLABLE_KINDS:
                    return _dotted(node.func) or "<call>", kind
        return None

    def _check_send(
        self, context: LintContext, call: ast.Call, state: ValueState
    ) -> Iterator[Violation]:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in self.SEND_METHODS
        ):
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            banned = self._banned_kind(arg, state)
            if banned is not None:
                name, kind = banned
                yield self.violation(
                    context, call,
                    f"{name!r} ({kind.value}) is sent across a process "
                    f"boundary via .{func.attr}(); ship plain data "
                    "(ints, strs, bytes, tuples) instead",
                )

    def _check_spawn(
        self,
        context: LintContext,
        call: ast.Call,
        state: ValueState,
        nested: Dict[str, FunctionNode],
        enclosing: FunctionNode,
    ) -> Iterator[Violation]:
        dotted = _dotted(call.func)
        if dotted is None or dotted.split(".")[-1] not in self.SPAWN_CALLS:
            return
        target: Optional[ast.expr] = None
        spawn_args: List[ast.expr] = []
        for keyword in call.keywords:
            if keyword.arg == "target":
                target = keyword.value
            elif keyword.arg == "args":
                spawn_args.append(keyword.value)
        for arg in spawn_args:
            banned = self._banned_kind(arg, state)
            if banned is not None:
                name, kind = banned
                yield self.violation(
                    context, call,
                    f"{name!r} ({kind.value}) passed as a worker spawn "
                    "argument cannot cross the process boundary; pass "
                    "plain data and reconstruct it in the worker",
                )
        if isinstance(target, ast.Lambda):
            yield self.violation(
                context, call,
                "lambda as a worker target is unpicklable under spawn "
                "and hides its captures; use a module-level function",
            )
        elif isinstance(target, ast.Name) and target.id in nested:
            for free in sorted(_free_names(nested[target.id])):
                kind = state.kinds.get(free, Kind.OTHER)
                if kind in UNPICKLABLE_KINDS:
                    yield self.violation(
                        context, call,
                        f"worker target {target.id!r} closes over "
                        f"{free!r} ({kind.value}); a closure-captured "
                        "lock/handle/RNG diverges or deadlocks after "
                        "fork — pass plain data through args=",
                    )


@register
class ResourceLifecycleRule(ProgramRule):
    """RL010: acquired resources must be released on every path.

    Invariant (PR 3/PR 4 operational correctness): a leaked pipe end
    keeps a dead worker's buffers alive, a leaked ``SharedMemory``
    segment survives the process (``/dev/shm`` fills until reboot), a
    leaked WAL segment handle defeats ``os.replace`` durability on
    Windows.  Every ``open()`` / ``Pipe()`` / ``SharedMemory()``
    acquisition bound to a local must reach ``close()`` / ``unlink()``
    or a ``with`` block on **all** explicit paths — including the
    ``raise`` inside an except handler that converts the error, the
    classic spot where cleanup is forgotten.  Escaping values (returned,
    stored on ``self``, passed to a callee) transfer ownership and are
    not flagged.
    """

    rule_id = "RL010"
    title = "resource acquisitions reach close()/unlink() on all paths"
    invariant = "no leaked handles/segments across crash-recovery paths"

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Flag (maybe-)open resources at explicit function exits."""
        if context.in_module("repro.lint"):
            return
        project = context.project
        for function, analysis in self.analyses(context):
            if project is not None:
                self._apply_return_summaries(context, project, analysis)
            for cfg_node, acquisition in analysis.exit_leaks():
                where = (
                    "raise"
                    if cfg_node.exit_kind == "raise"
                    else (cfg_node.exit_kind or "fall-through")
                )
                anchor = cfg_node.statement or function
                yield self.violation(
                    context, anchor,
                    f"{acquisition.name!r} ({acquisition.kind.value}, "
                    f"acquired at line {acquisition.line}) may still be "
                    f"open at this {where} exit of {function.name}(); "
                    "close it on this path or manage it with a `with` "
                    "block",
                )

    def _apply_return_summaries(
        self,
        context: LintContext,
        project: ProjectIndex,
        analysis: ValueAnalysis,
    ) -> None:
        """Interprocedural step: a call to an in-project function that
        *returns* fresh resources counts as an acquisition here.

        This is what lets the rule see through a private ``_spawn()``
        helper that opens a pipe and hands both ends back.
        """
        function = analysis.function
        owner = self._owner_of(context, function)
        reruns = False
        for cfg_node in analysis.cfg.statement_nodes():
            statement = cfg_node.statement
            if not isinstance(statement, ast.Assign):
                continue
            if len(statement.targets) != 1 or not isinstance(
                statement.value, ast.Call
            ):
                continue
            dotted = _dotted(statement.value.func)
            if dotted is None:
                continue
            symbol = project.resolve_call(context.module, owner, dotted)
            if symbol is None:
                continue
            kinds = _returned_resource_kinds(project, symbol)
            if not kinds:
                continue
            target = statement.targets[0]
            names: List[Optional[str]] = []
            if isinstance(target, ast.Name):
                names = [target.id]
            elif isinstance(target, ast.Tuple):
                names = [
                    element.id if isinstance(element, ast.Name) else None
                    for element in target.elts
                ]
            call = statement.value
            for position, name in enumerate(names):
                if name is None:
                    continue
                kind = kinds.get(position)
                if kind is None:
                    continue
                analysis.interprocedural_acquisitions[
                    (cfg_node.node_id, name)
                ] = Acquisition(name, kind, call.lineno, call.col_offset)
                reruns = True
        if reruns:
            analysis.run()

    @staticmethod
    def _owner_of(context: LintContext, function: FunctionNode) -> str:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                if function in node.body:
                    return node.name
        return ""


def _returned_resource_kinds(
    project: ProjectIndex, symbol: FunctionSymbol
) -> Dict[int, Kind]:
    """Per-tuple-position resource kinds a function's returns carry.

    ``{0: CONNECTION}`` means the first element of the returned tuple
    (or the sole return value) is a freshly acquired resource on at
    least one return path.  Summaries are cached on the per-run
    :class:`ProjectIndex`, keyed by qualname, so they cannot go stale
    across runs.
    """
    cache: Dict[str, Dict[int, Kind]] = getattr(
        project, "_return_summaries", {}
    )
    if not hasattr(project, "_return_summaries"):
        project._return_summaries = cache  # type: ignore[attr-defined]
    cached = cache.get(symbol.qualname)
    if cached is not None:
        return cached
    analysis = ValueAnalysis(symbol.node).run()
    kinds: Dict[int, Kind] = {}
    from .dataflow import RESOURCE_KINDS

    for cfg_node in analysis.cfg.statement_nodes():
        statement = cfg_node.statement
        if not isinstance(statement, ast.Return) or statement.value is None:
            continue
        state = analysis.state_before(cfg_node.node_id)
        elements: List[ast.expr]
        if isinstance(statement.value, ast.Tuple):
            elements = list(statement.value.elts)
        else:
            elements = [statement.value]
        for position, element in enumerate(elements):
            if isinstance(element, ast.Name):
                kind = state.kinds.get(element.id, Kind.OTHER)
                if kind in RESOURCE_KINDS:
                    kinds[position] = kind
    cache[symbol.qualname] = kinds
    return kinds


@register
class DurabilityProtocolRule(ProgramRule):
    """RL011: atomic writes and checkpoint reads follow the protocol.

    Invariant (PR 4 crash-safety): recovery is *exact* only if (a) an
    atomic-write site performs write → flush → fsync → ``os.replace``
    → **directory fsync** — without the file fsync the rename can
    publish an empty file after power loss, and without the directory
    fsync the rename itself may vanish; and (b) bytes read back from
    disk are CRC-verified before deserialization — a torn checkpoint
    must fall back to an older generation, not poison the sketch.
    """

    rule_id = "RL011"
    title = "atomic writes fsync before+after rename; reads CRC-verify"
    invariant = "exact recovery after power loss (PR 4 protocol)"

    RENAME_CALLS: FrozenSet[str] = frozenset(
        {"os.replace", "os.rename", "replace", "rename"}
    )
    LOADS_CALLS: FrozenSet[str] = frozenset({"loads", "load"})

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Check every function containing a rename or a loads call."""
        if context.in_module("repro.lint"):
            return
        for function, analysis in self.analyses(context):
            yield from self._check_atomic_write(context, function)
            yield from self._check_crc(context, function, analysis)

    # -- (a) write → flush → fsync → rename → dirsync -----------------------

    def _call_events(
        self, context: LintContext, function: FunctionNode, depth: int = 1
    ) -> List[Tuple[str, int]]:
        """(dotted_call, line) events in the function, inlining direct
        in-project callees one level deep (so an ``_fsync_write``-style
        helper satisfies the protocol at its call site)."""
        events: List[Tuple[str, int]] = []
        project = context.project
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            events.append((dotted, node.lineno))
            if depth > 0 and project is not None:
                owner = ResourceLifecycleRule._owner_of(context, function)
                symbol = project.resolve_call(
                    context.module, owner, dotted
                )
                if symbol is not None and symbol.node is not function:
                    events.extend(
                        (inner, node.lineno)
                        for inner, _ in self._call_events(
                            context, symbol.node, depth - 1
                        )
                    )
        return sorted(events, key=lambda event: event[1])

    def _check_atomic_write(
        self, context: LintContext, function: FunctionNode
    ) -> Iterator[Violation]:
        events = None
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted not in ("os.replace", "os.rename"):
                continue
            if events is None:
                events = self._call_events(context, function)
            line = node.lineno
            flush_before = any(
                name.split(".")[-1] == "flush" and at <= line
                for name, at in events
            )
            fsync_before = any(
                name.split(".")[-1] == "fsync" and at <= line
                for name, at in events
            )
            writes_before = any(
                name.split(".")[-1] in ("write", "writelines")
                and at <= line
                for name, at in events
            )
            fsync_after = any(
                name.split(".")[-1] in ("fsync", "fsync_dir", "fdatasync")
                and at > line
                for name, at in events
            )
            if writes_before and not (flush_before and fsync_before):
                yield self.violation(
                    context, node,
                    f"{dotted}() publishes a file written in this "
                    "function without flush+fsync first; after power "
                    "loss the rename can expose an empty or torn file",
                )
            if writes_before and not fsync_after:
                yield self.violation(
                    context, node,
                    f"{dotted}() is not followed by a directory fsync; "
                    "the rename itself is not durable until the parent "
                    "directory entry is synced (fsync an O_RDONLY fd of "
                    "the directory after the rename)",
                )

    # -- (b) CRC-verify before deserializing --------------------------------

    def _check_crc(
        self,
        context: LintContext,
        function: FunctionNode,
        analysis: ValueAnalysis,
    ) -> Iterator[Violation]:
        for cfg_node in analysis.cfg.statement_nodes():
            statement = cfg_node.statement
            if statement is None:
                continue
            state = analysis.state_before(cfg_node.node_id)
            for call in iter_header_nodes(statement):
                if not isinstance(call, ast.Call):
                    continue
                dotted = _dotted(call.func)
                if (
                    dotted is None
                    or dotted.split(".")[-1] not in self.LOADS_CALLS
                ):
                    continue
                for arg in call.args:
                    if isinstance(arg, ast.Name):
                        if state.kinds.get(arg.id) is Kind.DISK_BYTES:
                            yield self.violation(
                                context, call,
                                f"{dotted}({arg.id}) deserializes bytes "
                                "read from disk without a CRC check; "
                                "verify zlib.crc32 against the manifest "
                                "first so torn checkpoints fall back "
                                "instead of poisoning state",
                            )
                    elif isinstance(arg, ast.Call):
                        if classify_call(arg) is Kind.DISK_BYTES:
                            yield self.violation(
                                context, call,
                                f"{dotted}() deserializes raw disk bytes "
                                "inline; read, CRC-verify, then "
                                "deserialize",
                            )


@register
class ExceptionIntegrityRule(ProgramRule):
    """RL012: supervision-critical exceptions are never swallowed.

    Invariant (PR 4 recovery): ``WorkerDied`` and ``WalCorruption`` are
    the *only* signals that a shard's synopsis diverged from the
    stream; a handler that catches one and does nothing turns exact
    recovery into silent data loss.  ``BrokenPipeError`` /
    ``PoolUnavailable`` may be swallowed only inside best-effort
    teardown functions (close/cleanup/shutdown), where the process is
    already on its way out.
    """

    rule_id = "RL012"
    title = "WorkerDied/WalCorruption handled or re-raised, never dropped"
    invariant = "worker death must trigger recovery, not silence (PR 4)"

    CRITICAL: FrozenSet[str] = frozenset({"WorkerDied", "WalCorruption"})
    TEARDOWN_ONLY: FrozenSet[str] = frozenset(
        {"BrokenPipeError", "PoolUnavailable"}
    )
    TEARDOWN_MARKERS: Tuple[str, ...] = (
        "close", "cleanup", "shutdown", "teardown", "__del__", "__exit__",
        "stop",
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Flag pass-only handlers and suppress() of critical types."""
        for function in _iter_functions(context.tree):
            teardown = any(
                marker in function.name.lower()
                for marker in self.TEARDOWN_MARKERS
            )
            for node in ast.walk(function):
                if isinstance(node, ast.ExceptHandler):
                    yield from self._check_handler(context, node, teardown)
                elif isinstance(node, ast.Call):
                    yield from self._check_suppress(context, node, teardown)

    def _caught_names(self, handler: ast.ExceptHandler) -> List[str]:
        if handler.type is None:
            return []
        types = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names = []
        for expr in types:
            dotted = _dotted(expr)
            if dotted is not None:
                names.append(dotted.split(".")[-1])
        return names

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        """True when the handler body does nothing observable."""
        body = list(handler.body)
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ) and isinstance(body[0].value.value, str):
            body = body[1:]  # docstring-style comment
        return all(
            isinstance(statement, ast.Pass)
            or (
                isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
            )
            for statement in body
        )

    def _check_handler(
        self,
        context: LintContext,
        handler: ast.ExceptHandler,
        teardown: bool,
    ) -> Iterator[Violation]:
        if not self._swallows(handler):
            return
        for name in self._caught_names(handler):
            if name in self.CRITICAL:
                yield self.violation(
                    context, handler,
                    f"except {name}: pass swallows a supervision-"
                    "critical failure; respawn/recover the shard or "
                    "re-raise so the supervisor can",
                )
            elif name in self.TEARDOWN_ONLY and not teardown:
                yield self.violation(
                    context, handler,
                    f"except {name}: pass outside a teardown function "
                    "hides a dead worker; handle it (recover/degrade) "
                    "or re-raise",
                )

    def _check_suppress(
        self, context: LintContext, call: ast.Call, teardown: bool
    ) -> Iterator[Violation]:
        dotted = _dotted(call.func)
        if dotted is None or dotted.split(".")[-1] != "suppress":
            return
        for arg in call.args:
            name = (_dotted(arg) or "").split(".")[-1]
            if name in self.CRITICAL or (
                name in self.TEARDOWN_ONLY and not teardown
            ):
                yield self.violation(
                    context, call,
                    f"contextlib.suppress({name}) silences a "
                    "supervision-critical failure; handle it explicitly",
                )


@register
class LinearityGuardRule(ProgramRule):
    """RL013: ``# linear``-marked functions stay exactly linear.

    Invariant (Section 3): merge, subtract, and delta propagation are
    correct *because* the sketch is a linear map over integer counter
    vectors — ``sketch(A) + sketch(B) = sketch(A ⊎ B)`` exactly.  One
    float (rounding), one truncation (``int()``, ``//``, ``round``),
    or one sign-dependent branch (``if count > 0``) inside such a
    function breaks exactness silently: merges stop being associative
    and WAL-replay recovery stops being bit-identical.  The marker is a
    promise; this rule enforces it, in the marked function and — via
    the call graph — in its resolved in-project callees.
    """

    rule_id = "RL013"
    title = "# linear functions: no floats, truncation, or sign branches"
    invariant = "merge/subtract exactness: sketch(A)+sketch(B)=sketch(A⊎B)"

    MARKER = "# linear"
    TRUNCATING_CALLS: FrozenSet[str] = frozenset(
        {"int", "round", "trunc", "floor", "ceil", "float"}
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Check every ``# linear``-marked function (and its callees)."""
        lines = context.source.splitlines()
        marked = [
            function
            for function in _iter_functions(context.tree)
            if _marker_present(function, lines, self.MARKER)
        ]
        if not marked:
            return
        marked_names = {function.name for function in marked}
        for function in marked:
            yield from self._check_body(context, function, function.name)
            yield from self._check_callees(
                context, function, marked_names
            )

    def _check_body(
        self, context: LintContext, function: FunctionNode, label: str
    ) -> Iterator[Violation]:
        for node in ast.walk(function):
            if node is function:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Constant) and isinstance(
                node.value, float
            ):
                yield self.violation(
                    context, node,
                    f"float literal {node.value!r} in # linear function "
                    f"{label}(); linearity requires exact integers",
                )
            elif isinstance(node, (ast.BinOp, ast.AugAssign)) and (
                isinstance(node.op, (ast.Div, ast.FloorDiv))
            ):
                kind = (
                    "true division"
                    if isinstance(node.op, ast.Div)
                    else "floor division (truncation)"
                )
                yield self.violation(
                    context, node,
                    f"{kind} in # linear function {label}(); "
                    "merge/subtract must add counters, never scale or "
                    "truncate them",
                )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is not None and (
                    dotted.split(".")[-1] in self.TRUNCATING_CALLS
                ):
                    yield self.violation(
                        context, node,
                        f"{dotted}() in # linear function {label}() "
                        "truncates or converts counters; linear paths "
                        "must keep exact integer values",
                    )
            elif isinstance(node, (ast.If, ast.While)):
                yield from self._check_sign_branch(
                    context, node.test, label
                )
            elif isinstance(node, ast.IfExp):
                yield from self._check_sign_branch(
                    context, node.test, label
                )

    def _check_sign_branch(
        self, context: LintContext, test: ast.expr, label: str
    ) -> Iterator[Violation]:
        """Sign comparisons (``x > 0``) in branch conditions.

        Zero/equality tests (``x == 0``, ``x != 0``) are fine — skipping
        a zero delta preserves linearity; *ordering* against zero is
        what leaks sign information into control flow.  Comparisons of
        call results (``len(xs) > 0``) are structural, not counter
        sign, and are allowed.
        """
        for node in ast.walk(test):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(
                node.ops, operands, operands[1:]
            ):
                if not isinstance(op, (ast.Lt, ast.Gt, ast.LtE, ast.GtE)):
                    continue
                for value, other in ((left, right), (right, left)):
                    if (
                        isinstance(value, ast.Constant)
                        and value.value == 0
                        and isinstance(
                            other,
                            (ast.Name, ast.Attribute, ast.Subscript),
                        )
                    ):
                        yield self.violation(
                            context, node,
                            "branch on counter sign in # linear "
                            f"function {label}(); sign-dependent "
                            "control flow breaks merge associativity "
                            "(handle negatives by arithmetic, not "
                            "branching)",
                        )
                        break

    def _check_callees(
        self,
        context: LintContext,
        function: FunctionNode,
        marked_names: Set[str],
    ) -> Iterator[Violation]:
        """Float/division leaks one call level down, at the call site."""
        project = context.project
        if project is None:
            return
        owner = ResourceLifecycleRule._owner_of(context, function)
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            symbol = project.resolve_call(context.module, owner, dotted)
            if symbol is None or symbol.node is function:
                continue
            if symbol.name in marked_names:
                continue  # checked under its own marker
            callee_lines = self._symbol_lines(context, symbol)
            if callee_lines is not None and _marker_present(
                symbol.node, callee_lines, self.MARKER
            ):
                continue
            for inner in ast.walk(symbol.node):
                if isinstance(inner, ast.Constant) and isinstance(
                    inner.value, float
                ):
                    yield self.violation(
                        context, node,
                        f"# linear function {function.name}() calls "
                        f"{symbol.qualname}(), which contains float "
                        f"arithmetic (line {inner.lineno}); mark the "
                        "callee # linear and fix it, or keep it off "
                        "the linear path",
                    )
                    break
                if isinstance(inner, (ast.BinOp, ast.AugAssign)) and (
                    isinstance(inner.op, ast.Div)
                ):
                    yield self.violation(
                        context, node,
                        f"# linear function {function.name}() calls "
                        f"{symbol.qualname}(), which performs true "
                        f"division (line {inner.lineno}); linearity "
                        "does not survive the call",
                    )
                    break

    @staticmethod
    def _symbol_lines(
        context: LintContext, symbol: FunctionSymbol
    ) -> Optional[List[str]]:
        if symbol.module == context.module:
            return context.source.splitlines()
        if context.project is None:
            return None
        module_symbols = context.project.module(symbol.module)
        if module_symbols is None:
            return None
        info = context.index.get(symbol.module)
        if info is None:
            return None
        return info.source.splitlines()


@register
class SharedMemoryOwnershipRule(ProgramRule):
    """RL014: created shared-memory segments must reach ``unlink()``.

    Invariant (PR 9 shm transport): a POSIX shared-memory segment is a
    *named* kernel object — unlike pipes and file handles, ``close()``
    only unmaps it; the backing ``/dev/shm`` file survives the process
    until someone calls ``unlink()``.  RL010's lifecycle analysis
    treats ``close`` as a release, which is right for every other
    resource kind but too weak here.  This rule checks the creation
    sites: every ``SharedMemory(..., create=True)`` result must either
    reach a textual ``.unlink()`` in the same function or be handed
    off (returned, stored on ``self``/a container, or passed to a
    callee — the pool's sweep helpers take ownership that way).  An
    unbound creation is always a leak: nothing can ever unlink it.
    """

    rule_id = "RL014"
    title = "SharedMemory(create=True) reaches unlink() or is handed off"
    invariant = "no /dev/shm segment outlives its owning component"

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Flag segment creations whose unlink is unreachable."""
        if context.in_module("repro.lint"):
            return
        for function in _iter_functions(context.tree):
            yield from self._check_function(context, function)

    def _check_function(
        self, context: LintContext, function: FunctionNode
    ) -> Iterator[Violation]:
        bound: Dict[str, ast.Call] = {}
        for node in ast.walk(function):
            call = self._create_call(node)
            if call is None:
                continue
            name = self._binding_name(function, call)
            if name is None:
                if not self._escapes_unbound(function, call):
                    yield self.violation(
                        context, call,
                        "SharedMemory(create=True) result is never "
                        "bound: its unlink() is unreachable and the "
                        "segment outlives the process",
                    )
                continue
            bound[name] = call
        for name, call in bound.items():
            if self._released_or_escaped(function, name, call):
                continue
            yield self.violation(
                context, call,
                f"shared-memory segment {name!r} (created at line "
                f"{call.lineno}) never reaches unlink() and never "
                f"escapes {function.name}(); close() alone leaves the "
                "segment in /dev/shm",
            )

    @staticmethod
    def _create_call(node: ast.AST) -> Optional[ast.Call]:
        """The node as a ``SharedMemory(..., create=True)`` call."""
        if not isinstance(node, ast.Call):
            return None
        if classify_call(node) is not Kind.SHARED_MEMORY:
            return None
        for keyword in node.keywords:
            if keyword.arg == "create" and (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return node
        return None

    @staticmethod
    def _binding_name(
        function: FunctionNode, call: ast.Call
    ) -> Optional[str]:
        """The local name the creation is assigned to, if any."""
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and node.value is call:
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    return node.targets[0].id
                return None
            if isinstance(node, ast.withitem) and (
                node.context_expr is call
            ):
                if isinstance(node.optional_vars, ast.Name):
                    return node.optional_vars.id
        return None

    @staticmethod
    def _escapes_unbound(function: FunctionNode, call: ast.Call) -> bool:
        """True when the unbound creation itself transfers ownership."""
        for node in ast.walk(function):
            if isinstance(node, ast.Return) and node.value is call:
                return True
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = getattr(node, "value", None)
                if value is call:
                    # Assigned somewhere non-Name (self.x / d[k] = ...):
                    # ownership moves to that container.
                    return True
            if isinstance(node, ast.Call) and node is not call:
                if call in node.args or any(
                    keyword.value is call for keyword in node.keywords
                ):
                    return True
        return False

    @staticmethod
    def _released_or_escaped(
        function: FunctionNode, name: str, call: ast.Call
    ) -> bool:
        """True when ``name`` reaches unlink() or leaves the function."""
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "unlink"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                ):
                    return True
                for argument in list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]:
                    root: ast.AST = argument
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if isinstance(root, ast.Name) and root.id == name:
                        return True
            elif isinstance(node, ast.Return):
                root = node.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and root.id == name:
                    return True
            elif isinstance(node, ast.Assign) and node.value is not call:
                value = node.value
                if isinstance(value, ast.Name) and value.id == name:
                    for target in node.targets:
                        if isinstance(
                            target, (ast.Attribute, ast.Subscript)
                        ):
                            return True
        return False
