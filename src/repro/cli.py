"""Command-line interface: run scenarios and quick experiments.

Subcommands:

* ``repro-ddos synflood`` — simulate a SYN flood plus flash crowd,
  run the monitor, and print the alarms it raises.
* ``repro-ddos topk`` — generate a Zipf workload (the paper's
  Section 6.1 setup), track top-k, and print recall/error against the
  exact answer.
* ``repro-ddos space`` — print the Section 6.1 space-accounting table
  for a given number of distinct pairs.
* ``repro-ddos trace`` — generate a synthetic flow trace, or replay an
  existing one through the monitor.
* ``repro-ddos plan`` — capacity planning: recommend sketch shapes for
  a target workload and accuracy (Theorem 4.4 vs calibrated).
* ``repro-ddos stats`` — run an instrumented workload and export the
  observability registry (JSON and/or Prometheus text; see
  ``docs/observability.md``).  With ``--checkpoint-dir`` the run is
  made crash-safe: updates are write-ahead logged and the sketch is
  checkpointed, so the durability metrics appear in the export.
* ``repro-ddos recover`` — rebuild a sketch from a durability
  directory (checkpoint + WAL tail) and print what it knows; the
  operator side of ``docs/recovery.md``.
* ``repro-ddos serve`` — ingest a workload and expose live telemetry
  over HTTP: ``/metrics`` (Prometheus), ``/healthz`` (the sketch
  accuracy self-check), ``/traces`` (sampled spans), ``/topk``.
* ``repro-ddos blackbox`` — pretty-print (and diff) the flight
  recorder's crash post-mortem dumps.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, List, Optional

from .baselines import BruteForceTracker
from .metrics import average_relative_error, top_k_recall
from .monitor import DDoSMonitor, MonitorConfig, SlidingWindowSketch
from .netsim import (
    BackgroundTraffic,
    FlashCrowd,
    FlowExporter,
    Scenario,
    SynFloodAttack,
    format_ip,
    parse_ip,
)
from .sketch import SketchParams, TrackingDistinctCountSketch
from .sketch.estimate import TopKResult
from .streams import ZipfWorkload
from .types import AddressDomain


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ddos",
        description=(
            "Distinct-Count Sketch DDoS detection "
            "(reproduction of Ganguly et al., ICDCS 2007)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    flood = sub.add_parser(
        "synflood", help="simulate a SYN flood and run the monitor"
    )
    flood.add_argument("--victim", default="198.51.100.10")
    flood.add_argument("--flood-size", type=int, default=5000)
    flood.add_argument("--crowd-size", type=int, default=5000)
    flood.add_argument("--background-sessions", type=int, default=2000)
    flood.add_argument("--seed", type=int, default=0)

    topk = sub.add_parser(
        "topk", help="track top-k over a Zipf workload and score accuracy"
    )
    topk.add_argument("--pairs", type=int, default=100_000,
                      help="distinct source-destination pairs (paper's U)")
    topk.add_argument("--destinations", type=int, default=2000,
                      help="distinct destinations (paper's d)")
    topk.add_argument("--skew", type=float, default=1.5,
                      help="Zipf skew (paper's z)")
    topk.add_argument("--k", type=int, default=10)
    topk.add_argument("--r", type=int, default=3)
    topk.add_argument("--s", type=int, default=128)
    topk.add_argument("--seed", type=int, default=0)

    space = sub.add_parser(
        "space", help="print the Section 6.1 space-accounting comparison"
    )
    space.add_argument("--pairs", type=int, default=8_000_000)
    space.add_argument("--r", type=int, default=3)
    space.add_argument("--s", type=int, default=128)

    trace = sub.add_parser(
        "trace", help="generate or replay a flow-trace file"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    generate = trace_sub.add_parser(
        "generate", help="write a synthetic Zipf trace file"
    )
    generate.add_argument("path")
    generate.add_argument("--pairs", type=int, default=10_000)
    generate.add_argument("--destinations", type=int, default=200)
    generate.add_argument("--skew", type=float, default=1.5)
    generate.add_argument("--deletion-rate", type=float, default=0.0)
    generate.add_argument("--seed", type=int, default=0)
    replay = trace_sub.add_parser(
        "replay", help="replay a trace file through the monitor"
    )
    replay.add_argument("path")
    replay.add_argument("--k", type=int, default=10)
    replay.add_argument("--seed", type=int, default=0)

    plan = sub.add_parser(
        "plan", help="recommend sketch shapes for a target workload"
    )
    plan.add_argument("--pairs", type=int, required=True,
                      help="expected distinct pairs (U)")
    plan.add_argument("--kth-frequency", type=int, required=True,
                      help="smallest frequency to estimate well (f_vk)")
    plan.add_argument("--epsilon", type=float, default=0.25)
    plan.add_argument("--delta", type=float, default=0.05)

    lint = sub.add_parser(
        "lint", help="run the reprolint invariant checks over a source tree"
    )
    from .lint.cli import build_parser as build_lint_parser

    build_lint_parser(lint)

    describe = sub.add_parser(
        "describe", help="build a sketch from a trace and inspect it"
    )
    describe.add_argument("path", help="flow-trace file to load")
    describe.add_argument("--seed", type=int, default=0)
    describe.add_argument("--r", type=int, default=3)
    describe.add_argument("--s", type=int, default=128)

    experiment = sub.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    experiment.add_argument(
        "name", choices=["fig8", "fig9", "latency"],
        help="fig8 = accuracy grid; fig9 = timing sweep; "
             "latency = detection latency",
    )
    experiment.add_argument("--pairs", type=int, default=50_000)
    experiment.add_argument("--runs", type=int, default=2)
    experiment.add_argument("--seed", type=int, default=0)

    stats = sub.add_parser(
        "stats",
        help="run an instrumented workload and export runtime metrics",
    )
    stats.add_argument(
        "--workload", choices=["quickstart", "zipf"], default="quickstart",
        help="quickstart = SYN flood + legitimate handshakes through a "
             "lossy channel; zipf = the Section 6.1 workload",
    )
    stats.add_argument("--updates", type=int, default=2000,
                       help="stream length before export")
    stats.add_argument(
        "--format", choices=["json", "prometheus", "both"], default="both",
        help="snapshot format(s) printed after ingestion",
    )
    stats.add_argument(
        "--watch", type=int, default=0, metavar="N",
        help="print a one-line metric summary every N delivered updates "
             "(update-count driven: the library never reads the clock)",
    )
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--window", type=int, default=0, metavar="N",
        help="score alarms over an exact sliding window of N sub-epochs "
             "instead of all-time state (docs/windowing.md); windowed "
             "top-k joins the export",
    )
    stats.add_argument(
        "--subepoch-length", type=int, default=500, metavar="G",
        help="updates per window sub-epoch (window covers up to "
             "N*G updates; requires --window)",
    )
    stats.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="make the run crash-safe: write-ahead log every delivered "
             "update under DIR and checkpoint the sketch (see "
             "docs/recovery.md); durability metrics join the export",
    )
    stats.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint cadence in delivered updates (0 = only the "
             "final checkpoint at exit; requires --checkpoint-dir)",
    )

    recover = sub.add_parser(
        "recover",
        help="rebuild a sketch from a durability directory and "
             "inspect it",
    )
    recover.add_argument(
        "directory",
        help="durability directory (holds checkpoints/ and wal/)",
    )
    recover.add_argument("--label", default="sketch",
                         help="checkpoint label to recover")
    recover.add_argument(
        "--backend", choices=["reference", "packed"], default="reference",
        help="storage backend of the restored sketch",
    )
    recover.add_argument("--k", type=int, default=10,
                         help="top-k table size to print")

    serve = sub.add_parser(
        "serve",
        help="ingest a workload and expose live telemetry over HTTP",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9309,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument(
        "--workload", choices=["quickstart", "zipf"], default="zipf",
        help="stream ingested before serving (see `stats`)",
    )
    serve.add_argument("--updates", type=int, default=20_000,
                       help="stream length ingested before serving")
    serve.add_argument("--k", type=int, default=10,
                       help="top-k table size behind /topk")
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="ingest through a process-backed sharded sketch with N "
             "workers (0 = single in-process sketch); scrapes then "
             "pull worker-side counters and spans over the pipes",
    )
    serve.add_argument(
        "--sample-every", type=int, default=100, metavar="N",
        help="span head-sampling rate: record 1 in N root spans "
             "(1 = everything, 0 = tracing off)",
    )
    serve.add_argument(
        "--max-requests", type=int, default=0, metavar="N",
        help="serve exactly N requests then exit (0 = serve forever); "
             "the counted loop keeps the CLI clock-free, which is how "
             "CI smokes the endpoint",
    )
    serve.add_argument("--seed", type=int, default=0)

    blackbox = sub.add_parser(
        "blackbox",
        help="pretty-print (and diff) flight-recorder post-mortem dumps",
    )
    blackbox.add_argument("path", help="dump file (blackbox-*.bin)")
    blackbox.add_argument(
        "--diff", default=None, metavar="OTHER",
        help="second dump: report events/spans present in only one",
    )
    blackbox.add_argument(
        "--spans", type=int, default=20, metavar="N",
        help="most-recent spans to print (0 = all)",
    )

    return parser


def _run_synflood(args: argparse.Namespace) -> int:
    domain = AddressDomain(2 ** 32)
    victim = parse_ip(args.victim)
    crowd_dest = parse_ip("198.51.100.20")
    background = [parse_ip(f"198.51.100.{i}") for i in range(30, 60)]
    scenario = Scenario(
        SynFloodAttack(victim, flood_size=args.flood_size,
                       seed=args.seed + 1),
        FlashCrowd(crowd_dest, crowd_size=args.crowd_size,
                   seed=args.seed + 2),
        BackgroundTraffic(background, sessions=args.background_sessions,
                          seed=args.seed + 3),
    )
    updates = FlowExporter().export_all(scenario.packets())
    monitor = DDoSMonitor(
        domain, MonitorConfig(check_interval=500), seed=args.seed
    )
    alarms = monitor.observe_stream(updates)
    print(f"processed {len(updates)} flow updates")
    if not alarms:
        print("no alarms raised")
    for alarm in alarms:
        print(
            f"ALARM [{alarm.severity.value:8s}] dest={format_ip(alarm.dest)} "
            f"est_half_open_sources={alarm.estimated_frequency} "
            f"baseline={alarm.baseline_frequency:.0f}"
        )
    flash_hit = any(alarm.dest == crowd_dest for alarm in alarms)
    print(
        "flash crowd at "
        f"{format_ip(crowd_dest)} correctly NOT alarmed"
        if not flash_hit
        else "WARNING: flash crowd raised a false alarm"
    )
    return 0


def _run_topk(args: argparse.Namespace) -> int:
    domain = AddressDomain(2 ** 32)
    workload = ZipfWorkload(
        domain,
        distinct_pairs=args.pairs,
        destinations=args.destinations,
        skew=args.skew,
        seed=args.seed,
    )
    sketch = TrackingDistinctCountSketch(
        SketchParams(domain, r=args.r, s=args.s), seed=args.seed
    )
    print(f"processing {args.pairs} updates ...")
    sketch.process_stream(workload)
    result = sketch.track_topk(args.k)
    truth = workload.frequencies()
    recall = top_k_recall(truth, result.destinations, args.k)
    error = average_relative_error(truth, result.as_dict(), args.k)
    print(f"top-{args.k} recall: {recall:.2f}")
    print(f"avg relative error: {error:.3f}")
    print(f"sketch space: {sketch.space_bytes() / 1e6:.2f} MB "
          f"(brute force: "
          f"{BruteForceTracker.projected_space_bytes(args.pairs) / 1e6:.1f} "
          f"MB)")
    print("rank  destination        estimate")
    for index, entry in enumerate(result, start=1):
        print(
            f"{index:4d}  {format_ip(entry.dest):15s}  {entry.estimate:8d}"
        )
    return 0


def _run_space(args: argparse.Namespace) -> int:
    import math

    domain = AddressDomain(2 ** 32)
    params = SketchParams(domain, r=args.r, s=args.s)
    active_levels = max(1, int(math.log2(max(args.pairs, 2))))
    basic = params.allocated_bytes(active_levels=active_levels)
    tracking = 2 * basic  # the paper's "factor of about two"
    brute = BruteForceTracker.projected_space_bytes(args.pairs)
    print(f"distinct pairs (U):        {args.pairs:,}")
    print(f"non-empty levels:          {active_levels}")
    print(f"basic DCS space:           {basic / 1e6:10.2f} MB")
    print(f"tracking DCS space:        {tracking / 1e6:10.2f} MB")
    print(f"brute-force space:         {brute / 1e6:10.2f} MB")
    print(f"gain (basic vs brute):     {brute / basic:10.1f} x")
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    from .streams import read_trace, with_matched_deletions, write_trace

    domain = AddressDomain(2 ** 32)
    if args.trace_command == "generate":
        workload = ZipfWorkload(
            domain,
            distinct_pairs=args.pairs,
            destinations=args.destinations,
            skew=args.skew,
            seed=args.seed,
        )
        updates = workload.updates()
        if args.deletion_rate > 0:
            updates = with_matched_deletions(
                updates, rate=args.deletion_rate, seed=args.seed + 1
            )
        count = write_trace(
            args.path,
            updates,
            header=(
                f"synthetic Zipf trace: U={args.pairs} "
                f"d={args.destinations} z={args.skew} "
                f"deletion_rate={args.deletion_rate} seed={args.seed}"
            ),
        )
        print(f"wrote {count} updates to {args.path}")
        return 0
    # replay
    updates = read_trace(args.path)
    sketch = TrackingDistinctCountSketch(domain, seed=args.seed)
    sketch.process_stream(updates)
    result = sketch.track_topk(args.k)
    print(f"replayed {len(updates)} updates from {args.path}")
    print(f"estimated distinct active pairs: "
          f"{sketch.estimate_distinct_pairs()}")
    print("rank  destination        estimate")
    for index, entry in enumerate(result, start=1):
        print(f"{index:4d}  {format_ip(entry.dest):15s}  "
              f"{entry.estimate:8d}")
    return 0


def _run_plan(args: argparse.Namespace) -> int:
    from .analysis import plan_capacity

    domain = AddressDomain(2 ** 32)
    print(f"workload: U={args.pairs:,}, f_vk={args.kth_frequency:,}, "
          f"epsilon={args.epsilon}, delta={args.delta}")
    for flavor in ("calibrated", "theorem-4.4"):
        plan = plan_capacity(
            domain,
            distinct_pairs=args.pairs,
            kth_frequency=args.kth_frequency,
            epsilon=args.epsilon,
            delta=args.delta,
            flavor=flavor,
        )
        print(f"\n[{flavor}]")
        print(f"  r = {plan.params.r}, s = {plan.params.s}")
        print(f"  predicted space: "
              f"{plan.predicted_space_bytes / 1e6:.2f} MB")
        print(f"  predicted relative std-error at f_vk: "
              f"{plan.predicted_relative_error:.3f}")
    return 0


def _run_describe(args: argparse.Namespace) -> int:
    from .metrics import deep_size_bytes
    from .sketch.debug import describe
    from .streams import read_trace

    domain = AddressDomain(2 ** 32)
    updates = read_trace(args.path)
    sketch = TrackingDistinctCountSketch(domain, r=args.r, s=args.s,
                                         seed=args.seed)
    sketch.process_stream(updates)
    print(describe(sketch))
    print(f"estimated distinct active pairs: "
          f"{sketch.estimate_distinct_pairs()}")
    print(f"actual Python memory: "
          f"{deep_size_bytes(sketch) / 1e6:.1f} MB "
          f"(model: {sketch.space_bytes() / 1e6:.2f} MB)")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    from .experiments import (
        run_accuracy_grid,
        run_detection_latency,
        run_timing_sweep,
    )

    domain = AddressDomain(2 ** 32)
    if args.name == "fig8":
        grid = run_accuracy_grid(
            domain, distinct_pairs=args.pairs, runs=args.runs,
            seed=args.seed,
        )
        skews = sorted({cell.skew for cell in grid.cells})
        k_values = sorted({cell.k for cell in grid.cells})
        print(f"Figure 8 grid: U={grid.distinct_pairs}, "
              f"d={grid.destinations}, runs={args.runs}")
        header = "k    " + "  ".join(
            f"z={skew} (recall/err)" for skew in skews
        )
        print(header)
        for k in k_values:
            cells = [grid.cell(skew, k) for skew in skews]
            row = "  ".join(
                f"{cell.recall:.2f}/{cell.relative_error:.3f}"
                + " " * 8
                for cell in cells
            )
            print(f"{k:<4d} {row}")
        return 0
    if args.name == "fig9":
        points = run_timing_sweep(
            domain, distinct_pairs=args.pairs, seed=args.seed,
        )
        print("Figure 9 sweep (us/update):")
        print("query_freq   basic    tracking")
        frequencies = sorted({p.query_frequency for p in points})
        by_key = {(p.variant, p.query_frequency): p for p in points}
        for frequency in frequencies:
            basic = by_key[("basic", frequency)]
            tracking = by_key[("tracking", frequency)]
            print(f"{frequency:<12.5f} "
                  f"{basic.microseconds_per_update:<8.1f} "
                  f"{tracking.microseconds_per_update:<8.1f}")
        return 0
    # latency
    result = run_detection_latency(
        domain, flood_size=args.pairs // 10 or 1000, seed=args.seed,
    )
    if result.detected:
        print(f"victim detected after {result.updates_until_alarm} "
              f"updates ({result.attack_fraction_seen:.1%} of the "
              f"attack consumed)")
    else:
        print("victim not detected")
    return 0


def _stats_quickstart(
    domain: AddressDomain, count: int, seed: int
) -> List["FlowUpdate"]:
    """A quickstart-style stream: SYN flood + legitimate handshakes."""
    import random

    from .hashing import derive_seed
    from .types import FlowUpdate

    rng = random.Random(derive_seed(seed, "stats-quickstart"))
    victim = parse_ip("198.51.100.10")
    updates: List[FlowUpdate] = []
    legit_open: List[tuple] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.6:
            # Spoofed SYN to the victim: stays half-open forever.
            updates.append(FlowUpdate(rng.randrange(domain.m), victim, 1))
        elif legit_open and roll < 0.8:
            # A legitimate handshake completes: matched deletion.
            source, dest = legit_open.pop()
            updates.append(FlowUpdate(source, dest, -1))
        else:
            source = rng.randrange(domain.m)
            dest = parse_ip(f"203.0.113.{rng.randrange(1, 40)}")
            legit_open.append((source, dest))
            updates.append(FlowUpdate(source, dest, 1))
    return updates


def _run_stats(args: argparse.Namespace) -> int:
    from .obs import Registry, render_json, render_prometheus
    from .resilience import DurableSketch
    from .streams.transport import Channel

    if args.checkpoint_every and not args.checkpoint_dir:
        print("--checkpoint-every requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    if args.window < 0 or args.subepoch_length < 1:
        print("--window must be >= 0 and --subepoch-length >= 1",
              file=sys.stderr)
        return 2
    domain = AddressDomain(2 ** 32)
    registry = Registry()
    window: Optional[SlidingWindowSketch] = None
    if args.window:
        window = SlidingWindowSketch(
            domain,
            subepoch_length=args.subepoch_length,
            window_subepochs=args.window,
            seed=args.seed,
            obs=registry,
        )
    monitor = DDoSMonitor(
        domain,
        MonitorConfig(check_interval=500),
        seed=args.seed,
        obs=registry,
        window=window,
    )
    durable: Optional[DurableSketch] = None
    if args.checkpoint_dir:
        durable = DurableSketch(
            args.checkpoint_dir,
            domain,
            seed=args.seed,
            checkpoint_every=args.checkpoint_every,
            obs=registry,
        )
        if durable.recovered:
            print(
                f"# resumed from checkpoint "
                f"(wal_seq={durable.wal.next_seq}, "
                f"replayed={durable.records_replayed})"
            )
    channel = Channel(
        loss_rate=0.02,
        duplicate_rate=0.01,
        reorder_window=4,
        seed=args.seed,
        obs=registry,
    )
    if args.workload == "zipf":
        workload = ZipfWorkload(
            domain,
            distinct_pairs=args.updates,
            destinations=max(args.updates // 50, 10),
            skew=1.2,
            seed=args.seed,
        )
        updates = list(workload.updates())
    else:
        updates = _stats_quickstart(domain, args.updates, args.seed)
    delivered = channel.transmit(updates)

    def metric_value(name: str) -> int:
        instrument = registry.get(name)
        return getattr(instrument, "value", 0) if instrument else 0

    for position, update in enumerate(delivered, start=1):
        monitor.observe(update)
        if durable is not None:
            durable.process(update)
        if args.watch and position % args.watch == 0:
            print(
                f"[watch] delivered={position} "
                f"sketch_updates="
                f"{metric_value('repro_sketch_updates_total')} "
                f"occupied_buckets="
                f"{metric_value('repro_sketch_occupied_buckets')} "
                f"alarms={metric_value('repro_monitor_alarms_total')}"
            )
    monitor.check_now()
    if durable is not None:
        durable.checkpoint()
        durable.close()
        print(
            f"# durable state under {args.checkpoint_dir} "
            f"(wal_seq={durable.wal.next_seq}; recover with: "
            f"repro-ddos recover {args.checkpoint_dir})"
        )
    print(
        f"# ingested {len(delivered)} of {len(updates)} updates "
        f"(workload={args.workload}, seed={args.seed})"
    )
    if window is not None:
        top = window.top_k(5)
        listing = ", ".join(
            f"{entry.dest}:{entry.estimate}" for entry in top
        )
        print(
            f"# window top-5 over last <= "
            f"{args.window * args.subepoch_length} updates "
            f"(subepoch={window.subepoch_index}): {listing}"
        )
    if args.format in ("prometheus", "both"):
        print(render_prometheus(registry), end="")
    if args.format in ("json", "both"):
        print(render_json(registry))
    return 0


def _run_recover(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .exceptions import ParameterError
    from .resilience import recover_sketch

    try:
        result = recover_sketch(
            Path(args.directory),
            label=args.label,
            backend=args.backend,
        )
    except ParameterError as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return 1
    info = result.checkpoint
    if info is not None:
        print(
            f"checkpoint: label={info.label!r} "
            f"wal_count={info.wal_count} bytes={info.nbytes} "
            f"crc32={info.crc32:#010x}"
        )
    print(f"wal records replayed: {result.records_replayed}")
    print(f"sketch reflects wal position: {result.wal_count}")
    sketch = result.sketch
    print(f"recovered: {sketch!r}")
    if hasattr(sketch, "track_topk"):
        top = sketch.track_topk(args.k)
        print("rank  destination        estimate")
        for index, entry in enumerate(top, start=1):
            print(
                f"{index:4d}  {format_ip(entry.dest):15s}  "
                f"{entry.estimate:8d}"
            )
    return 0


def _serve_updates(args: argparse.Namespace) -> List["FlowUpdate"]:
    """The pre-serve ingest stream (same shapes as ``stats``)."""
    domain = AddressDomain(2 ** 32)
    if args.workload == "zipf":
        workload = ZipfWorkload(
            domain,
            distinct_pairs=args.updates,
            destinations=max(args.updates // 50, 10),
            skew=1.2,
            seed=args.seed,
        )
        return list(workload.updates())
    return _stats_quickstart(domain, args.updates, args.seed)


def _run_serve(args: argparse.Namespace) -> int:
    from .obs import (
        FlightRecorder,
        Registry,
        SketchHealth,
        TelemetryServer,
        Tracer,
        install_recorder,
        install_tracer,
        uninstall_recorder,
        uninstall_tracer,
    )
    from .sketch.sharded import ShardedSketch

    if args.sample_every < 0:
        print("--sample-every must be >= 0", file=sys.stderr)
        return 2
    domain = AddressDomain(2 ** 32)
    registry = Registry()
    if args.sample_every > 0:
        install_tracer(
            Tracer(sample_every=args.sample_every, obs=registry)
        )
    install_recorder(FlightRecorder())
    try:
        updates = _serve_updates(args)
        refresh: Optional[Callable[[], None]] = None
        if args.shards > 0:
            sharded = ShardedSketch(
                domain,
                shards=args.shards,
                seed=args.seed,
                obs=registry,
                backend="process",
            )
            sharded.process_stream(updates)
            def sketch_view() -> TrackingDistinctCountSketch:
                return sharded.combined()

            def topk() -> "TopKResult":
                return sharded.track_topk(args.k)

            def pull_workers() -> None:
                sharded.absorb_worker_obs()
                sharded.drain_worker_traces()

            refresh = pull_workers
        else:
            sketch = TrackingDistinctCountSketch(
                domain, seed=args.seed, obs=registry
            )
            sketch.process_stream(updates)

            def sketch_view() -> TrackingDistinctCountSketch:
                return sketch

            def topk() -> "TopKResult":
                return sketch.track_topk(args.k)
        server = TelemetryServer(
            registry,
            host=args.host,
            port=args.port,
            topk=topk,
            health=SketchHealth(sketch_view),
            refresh=refresh,
        )
        print(
            f"# ingested {len(updates)} updates "
            f"(workload={args.workload}, shards={args.shards})"
        )
        print(
            f"# serving http://{server.host}:{server.port}"
            "{/metrics,/healthz,/traces,/topk}"
        )
        sys.stdout.flush()
        try:
            if args.max_requests:
                server.serve(args.max_requests)
                print(f"# served {server.requests_served} requests")
            else:
                while True:
                    server.serve(1)
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
            if args.shards > 0:
                sharded.close()
        return 0
    finally:
        uninstall_tracer()
        uninstall_recorder()


def _format_blackbox_event(event: dict) -> str:
    fields = " ".join(
        f"{key}={value}"
        for key, value in sorted(event.items())
        if key not in ("seq", "kind")
    )
    return (
        f"  [{event.get('seq', '?'):>4}] "
        f"{str(event.get('kind', '?')):<20} {fields}".rstrip()
    )


def _run_blackbox(args: argparse.Namespace) -> int:
    from collections import Counter
    from pathlib import Path

    from .exceptions import ParameterError
    from .obs import load_blackbox

    try:
        dump = load_blackbox(Path(args.path))
    except (OSError, ParameterError) as error:
        print(f"cannot read dump: {error}", file=sys.stderr)
        return 1
    header = dump.header
    print(
        f"blackbox {args.path}: reason={dump.reason!r} "
        f"pid={header.get('pid')} version={header.get('version')}"
    )
    if dump.torn:
        print("WARNING: dump is torn (truncated mid-record); records "
              "below are the intact prefix")
    print(f"\nevents ({len(dump.events)}):")
    for event in dump.events:
        print(_format_blackbox_event(event))
    spans = dump.spans
    shown = spans if args.spans == 0 else spans[-args.spans:]
    print(f"\nspans ({len(spans)} buffered, showing {len(shown)}):")
    for entry in shown:
        duration_us = int(entry.get("dur_ns", 0)) // 1000
        print(
            f"  {str(entry.get('name', '?')):<24} "
            f"{duration_us:>8} us  pid={entry.get('pid')} "
            f"id={entry.get('id')} parent={entry.get('parent')}"
        )
    if args.diff is None:
        return 0
    try:
        other = load_blackbox(Path(args.diff))
    except (OSError, ParameterError) as error:
        print(f"cannot read diff target: {error}", file=sys.stderr)
        return 1

    def event_key(event: dict) -> tuple:
        return tuple(
            sorted(
                (key, str(value))
                for key, value in event.items()
                if key != "seq"
            )
        )

    ours = Counter(event_key(event) for event in dump.events)
    theirs = Counter(event_key(event) for event in other.events)
    print(f"\ndiff vs {args.diff}:")
    for label, extra in (
        ("only in first", ours - theirs),
        ("only in second", theirs - ours),
    ):
        total = sum(extra.values())
        print(f"  events {label}: {total}")
        for key, count in sorted(extra.items()):
            rendered = " ".join(f"{k}={v}" for k, v in key)
            print(f"    {count}x {rendered}")
    our_names = Counter(str(entry.get("name")) for entry in dump.spans)
    their_names = Counter(str(entry.get("name")) for entry in other.spans)
    for name in sorted(set(our_names) | set(their_names)):
        ours_n, theirs_n = our_names[name], their_names[name]
        if ours_n != theirs_n:
            print(f"  span {name}: {ours_n} vs {theirs_n}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "synflood":
        return _run_synflood(args)
    if args.command == "topk":
        return _run_topk(args)
    if args.command == "space":
        return _run_space(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "plan":
        return _run_plan(args)
    if args.command == "lint":
        from .lint.cli import run as run_lint

        return run_lint(args)
    if args.command == "describe":
        return _run_describe(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "recover":
        return _run_recover(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "blackbox":
        return _run_blackbox(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
