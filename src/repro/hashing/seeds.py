"""Deterministic seed derivation for randomized structures.

Every randomized object in the library receives a single integer seed
and derives the seeds of its sub-structures (hash tables, inner hashes)
through :func:`derive_seed`, a splittable construction based on
SHA-256.  This gives us:

* reproducibility — the same top-level seed always yields bit-identical
  sketches, which the test suite and the merge operation rely on;
* independence — seeds derived under distinct labels behave as
  independently drawn, which the analysis (mutually independent ``g_i``)
  assumes.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List

_MASK_64 = (1 << 64) - 1


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``seed`` and a label path.

    Labels may be any objects with a stable ``repr`` (ints and strings in
    practice).  Distinct label paths produce (cryptographically)
    independent child seeds.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("ascii"))
    for label in labels:
        digest.update(b"/")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & _MASK_64


class SeedStream:
    """An endless stream of independent seeds derived from one root seed.

    Example:
        >>> stream = SeedStream(42, "inner-tables")
        >>> a, b = stream.next(), stream.next()
        >>> a != b
        True
    """

    def __init__(self, seed: int, *labels: object) -> None:
        self._seed = int(seed)
        self._labels = labels
        self._index = 0

    def next(self) -> int:
        """Return the next seed in the stream."""
        value = derive_seed(self._seed, *self._labels, self._index)
        self._index += 1
        return value

    def take(self, count: int) -> List[int]:
        """Return the next ``count`` seeds as a list."""
        return [self.next() for _ in range(count)]

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next()
