"""Tabulation hashing: an alternative uniform hash for wide domains.

Simple tabulation hashing splits the key into bytes and XORs together
per-byte lookup tables of random words.  It is 3-wise independent and
behaves like a fully random function for many hashing applications
(Patrascu & Thorup), making it a good drop-in alternative to the
polynomial hashes where the ``2^61 - 1`` field would be too narrow.
"""

from __future__ import annotations

import random
from typing import List

from ..exceptions import ParameterError
from .seeds import derive_seed

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


class TabulationHash:
    """Simple tabulation hash ``[2^(8*key_bytes)] -> [range_size]``.

    Args:
        range_size: number of output buckets.
        seed: integer seed for the lookup tables.
        key_bytes: how many bytes of the key to tabulate (keys larger
            than ``2^(8*key_bytes)`` are folded down by XOR first).
    """

    __slots__ = ("range_size", "seed", "key_bytes", "_tables")

    def __init__(self, range_size: int, seed: int, key_bytes: int = 8) -> None:
        if range_size < 1:
            raise ParameterError(
                f"hash range must be >= 1, got {range_size}"
            )
        if key_bytes < 1:
            raise ParameterError(
                f"key_bytes must be >= 1, got {key_bytes}"
            )
        self.range_size = range_size
        self.seed = seed
        self.key_bytes = key_bytes
        rng = random.Random(derive_seed(seed, "tabulation", key_bytes))
        self._tables: List[List[int]] = [
            [rng.getrandbits(_WORD_BITS) for _ in range(256)]
            for _ in range(key_bytes)
        ]

    def word(self, value: int) -> int:
        """Return the full 64-bit tabulated word for ``value``."""
        if value < 0:
            raise ParameterError("tabulation keys must be non-negative")
        # Fold oversized keys into the tabulated width.
        width = 8 * self.key_bytes
        folded = value
        while folded >> width:
            folded = (folded & ((1 << width) - 1)) ^ (folded >> width)
        acc = 0
        for table in self._tables:
            acc ^= table[folded & 0xFF]
            folded >>= 8
        return acc & _WORD_MASK

    def __call__(self, value: int) -> int:
        """Hash ``value`` into ``[0, range_size)``."""
        return self.word(value) % self.range_size

    def __repr__(self) -> str:
        return (
            f"TabulationHash(range_size={self.range_size}, "
            f"seed={self.seed}, key_bytes={self.key_bytes})"
        )
