"""Tabulation hashing: an alternative uniform hash for wide domains.

Simple tabulation hashing splits the key into bytes and XORs together
per-byte lookup tables of random words.  It is 3-wise independent and
behaves like a fully random function for many hashing applications
(Patrascu & Thorup), making it a good drop-in alternative to the
polynomial hashes where the ``2^61 - 1`` field would be too narrow.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional

from .._accel import np as _np
from .._accel import to_uint64_array as _to_uint64_array
from ..exceptions import ParameterError
from .seeds import derive_seed

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


class TabulationHash:
    """Simple tabulation hash ``[2^(8*key_bytes)] -> [range_size]``.

    Args:
        range_size: number of output buckets.
        seed: integer seed for the lookup tables.
        key_bytes: how many bytes of the key to tabulate (keys larger
            than ``2^(8*key_bytes)`` are folded down by XOR first).
    """

    __slots__ = ("range_size", "seed", "key_bytes", "_tables", "_np_tables")

    def __init__(self, range_size: int, seed: int, key_bytes: int = 8) -> None:
        if range_size < 1:
            raise ParameterError(
                f"hash range must be >= 1, got {range_size}"
            )
        if key_bytes < 1:
            raise ParameterError(
                f"key_bytes must be >= 1, got {key_bytes}"
            )
        self.range_size = range_size
        self.seed = seed
        self.key_bytes = key_bytes
        rng = random.Random(derive_seed(seed, "tabulation", key_bytes))
        self._tables: List[List[int]] = [
            [rng.getrandbits(_WORD_BITS) for _ in range(256)]
            for _ in range(key_bytes)
        ]
        # Lazily-built uint64 copy of the tables for the vectorized path.
        self._np_tables: Optional[Any] = None

    def word(self, value: int) -> int:
        """Return the full 64-bit tabulated word for ``value``."""
        if value < 0:
            raise ParameterError("tabulation keys must be non-negative")
        # Fold oversized keys into the tabulated width.
        width = 8 * self.key_bytes
        folded = value
        while folded >> width:
            folded = (folded & ((1 << width) - 1)) ^ (folded >> width)
        acc = 0
        for table in self._tables:
            acc ^= table[folded & 0xFF]
            folded >>= 8
        return acc & _WORD_MASK

    def words_many(self, values: Any) -> Any:  # hot-path
        """Tabulated 64-bit words for a batch of values.

        Bit-identical to :meth:`word` per value.  With numpy available
        the per-byte table lookups become eight fancy-index gathers;
        otherwise a plain list of ints is returned.  Values at or above
        ``2^64`` always take the scalar path (they need the XOR fold).
        """
        codes = _to_uint64_array(values)
        if codes is None:
            word = self.word
            return [word(value) for value in values]
        folded = codes
        width = 8 * self.key_bytes
        if width < 64:
            # Same XOR fold as the scalar path, vectorized.
            mask = _np.uint64((1 << width) - 1)
            shift = _np.uint64(width)
            while bool((folded >> shift).any()):
                folded = (folded & mask) ^ (folded >> shift)
        if self._np_tables is None:
            self._np_tables = _np.array(self._tables, dtype=_np.uint64)
        tables = self._np_tables
        acc = _np.zeros(len(codes), dtype=_np.uint64)
        byte_mask = _np.uint64(0xFF)
        eight = _np.uint64(8)
        for index in range(self.key_bytes):
            acc ^= tables[index][(folded & byte_mask).astype(_np.int64)]
            folded = folded >> eight
        return acc

    def hash_many(self, values: Any) -> Any:  # hot-path
        """Hash a batch of values into ``[0, range_size)``.

        Bit-identical to calling the hash once per value; numpy array
        out when vectorized, list of ints otherwise.
        """
        words = self.words_many(values)
        if isinstance(words, list):
            s = self.range_size
            return [word % s for word in words]
        return (words % _np.uint64(self.range_size)).astype(_np.int64)

    def __call__(self, value: int) -> int:
        """Hash ``value`` into ``[0, range_size)``."""
        return self.word(value) % self.range_size

    def __repr__(self) -> str:
        return (
            f"TabulationHash(range_size={self.range_size}, "
            f"seed={self.seed}, key_bytes={self.key_bytes})"
        )
