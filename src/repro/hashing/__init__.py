"""Hash-function substrate used by every sketch in the library.

The paper's structures need two kinds of hash functions:

* **Uniform second-level hashes** ``g_i : [m^2] -> [s]`` — implemented as
  Carter-Wegman polynomial hashes over a Mersenne-prime field
  (:class:`CarterWegmanHash`) or, alternatively, tabulation hashing
  (:class:`TabulationHash`).
* **A geometric first-level hash** ``h : [m^2] -> {0..Theta(log m)}``
  with ``Pr[h(x) = l] = 2^-(l+1)`` — implemented per the paper's
  footnote 5 as a uniform randomizer composed with the
  least-significant-set-bit operator (:class:`GeometricLevelHash`).

All hashes are deterministic functions of an explicit seed so that
structures can be reproduced exactly and sketches built on different
machines (or different routers) can be merged.
"""

from .geometric import GeometricLevelHash, lsb_index
from .seeds import SeedStream, derive_seed
from .tabulation import TabulationHash
from .universal import MERSENNE_61, CarterWegmanHash, PairwiseHashFamily

__all__ = [
    "CarterWegmanHash",
    "GeometricLevelHash",
    "MERSENNE_61",
    "PairwiseHashFamily",
    "SeedStream",
    "TabulationHash",
    "derive_seed",
    "lsb_index",
]
