"""Carter-Wegman universal hashing over a Mersenne-prime field.

The second-level hash tables of a Distinct-Count Sketch need mutually
independent hashes ``g_i : [m^2] -> [s]`` that map the pair domain
uniformly onto ``s`` buckets (Section 3).  We implement the classic
polynomial construction ``h(x) = ((a * x + b) mod p) mod s`` with
``p = 2^61 - 1``, which is pairwise independent and extremely fast to
evaluate because reduction modulo a Mersenne prime needs only shifts and
adds.

Higher-degree polynomials (k-wise independence) are available through
:class:`PairwiseHashFamily` with ``degree > 2``; the sketch analysis
only needs pairwise independence, but property tests use higher degrees
to confirm the implementation generalizes.
"""

from __future__ import annotations

import random
from typing import Any, List

from .._accel import np as _np
from .._accel import to_uint64_array as _to_uint64_array
from ..exceptions import ParameterError
from .seeds import derive_seed

#: The Mersenne prime 2^61 - 1 used as the hash field modulus.
MERSENNE_61 = (1 << 61) - 1

#: Low 32-bit mask used by the vectorized limb-split evaluation.
_LIMB_MASK = (1 << 32) - 1


def _mod_mersenne_61(value: int) -> int:
    """Reduce ``value`` modulo ``2^61 - 1`` without division.

    Works for any non-negative ``value`` below ``2^122``, which covers
    the products formed during polynomial evaluation.
    """
    value = (value & MERSENNE_61) + (value >> 61)
    if value >= MERSENNE_61:
        value -= MERSENNE_61
    return value


class CarterWegmanHash:
    """A pairwise-independent hash ``[universe] -> [range_size]``.

    Args:
        range_size: number of output buckets ``s``; must be positive.
        seed: integer seed determining the random coefficients.
        universe: (optional) size of the input domain, used only for
            sanity checks; inputs are reduced mod the field regardless.
    """

    __slots__ = ("range_size", "seed", "_a", "_b")

    def __init__(self, range_size: int, seed: int, universe: int = 0) -> None:
        if range_size < 1:
            raise ParameterError(
                f"hash range must be >= 1, got {range_size}"
            )
        if universe and universe > MERSENNE_61:
            raise ParameterError(
                "universe exceeds the 2^61 - 1 hash field; "
                "use TabulationHash for wider domains"
            )
        self.range_size = range_size
        self.seed = seed
        rng = random.Random(derive_seed(seed, "carter-wegman"))
        # a must be nonzero for the map to be pairwise independent.
        self._a = rng.randrange(1, MERSENNE_61)
        self._b = rng.randrange(0, MERSENNE_61)

    def __call__(self, value: int) -> int:
        """Hash ``value`` into ``[0, range_size)``."""
        return _mod_mersenne_61(self._a * (value % MERSENNE_61) + self._b) % self.range_size

    def hash_many(self, values: Any) -> Any:  # hot-path
        """Hash a batch of values into ``[0, range_size)``.

        Bit-identical to calling the hash once per value, but with one
        local binding of ``a``, ``b``, and the field modulus for the
        whole batch.  With numpy available (and every value below
        ``2^64``) the evaluation is vectorized via an exact 32-bit
        limb-split of the product ``a * x`` — integer-only throughout,
        so the result is the true field value, not an approximation.

        Returns a numpy ``int64`` array on the vectorized path, else a
        plain list of ints.
        """
        if _np is not None:
            codes = _to_uint64_array(values)
            if codes is not None:
                return self._hash_many_vectorized(codes)
        a = self._a
        b = self._b
        p = MERSENNE_61
        s = self.range_size
        out: List[int] = []
        append = out.append
        for value in values:
            acc = a * (value % p) + b
            acc = (acc & p) + (acc >> 61)
            if acc >= p:
                acc -= p
            append(acc % s)
        return out

    def _hash_many_vectorized(self, codes: Any) -> Any:  # hot-path
        """Exact vectorized ``((a * x + b) mod p) mod s`` on uint64 codes.

        ``a * x`` cannot be formed in 64 bits, so split ``a = a1 * 2^32
        + a0`` and ``x = x1 * 2^32 + x0`` (with ``x`` already reduced
        mod ``p``, so ``x1 < 2^29``) and reduce each partial product
        with the Mersenne identities ``2^64 = 8`` and ``2^61 = 1``
        (mod ``p``).  Every intermediate fits in uint64 and the final
        fold plus one conditional subtract lands in ``[0, p)``, exactly
        matching the scalar :func:`_mod_mersenne_61` result.
        """
        p = _np.uint64(MERSENNE_61)
        mask = _np.uint64(_LIMB_MASK)
        # x = code mod p (codes < 2^64 < p^2, one fold + subtract suffices).
        x = (codes & p) + (codes >> _np.uint64(61))
        x = _np.where(x >= p, x - p, x)
        a0 = _np.uint64(self._a & _LIMB_MASK)
        a1 = _np.uint64(self._a >> 32)
        x0 = x & mask
        x1 = x >> _np.uint64(32)
        p00 = a0 * x0
        mid = a1 * x0 + a0 * x1
        p11 = a1 * x1
        # a*x = p11*2^64 + mid*2^32 + p00; reduce each term mod p.
        term_hi = p11 << _np.uint64(3)
        term_mid = (mid >> _np.uint64(29)) + (
            (mid & _np.uint64((1 << 29) - 1)) << _np.uint64(32)
        )
        term_lo = (p00 & p) + (p00 >> _np.uint64(61))
        acc = term_hi + term_mid + term_lo + _np.uint64(self._b)
        acc = (acc & p) + (acc >> _np.uint64(61))
        acc = _np.where(acc >= p, acc - p, acc)
        return (acc % _np.uint64(self.range_size)).astype(_np.int64)

    def field_value(self, value: int) -> int:
        """Return the full field element before the final mod-range step.

        Exposed for the geometric hash, which needs the raw randomized
        value rather than a bucket index.
        """
        return _mod_mersenne_61(self._a * (value % MERSENNE_61) + self._b)

    def __repr__(self) -> str:
        return (
            f"CarterWegmanHash(range_size={self.range_size}, seed={self.seed})"
        )


class PairwiseHashFamily:
    """A degree-``d`` polynomial hash family over the Mersenne field.

    Degree 2 gives pairwise independence (what the sketch needs);
    higher degrees give k-wise independence for k = degree.
    """

    __slots__ = ("range_size", "seed", "degree", "_coefficients")

    def __init__(self, range_size: int, seed: int, degree: int = 2) -> None:
        if range_size < 1:
            raise ParameterError(
                f"hash range must be >= 1, got {range_size}"
            )
        if degree < 1:
            raise ParameterError(f"degree must be >= 1, got {degree}")
        self.range_size = range_size
        self.seed = seed
        self.degree = degree
        rng = random.Random(derive_seed(seed, "poly-family", degree))
        coefficients: List[int] = [
            rng.randrange(0, MERSENNE_61) for _ in range(degree)
        ]
        # Leading coefficient nonzero keeps the polynomial degree exact.
        if coefficients[0] == 0:
            coefficients[0] = 1
        self._coefficients = coefficients

    def __call__(self, value: int) -> int:
        """Evaluate the polynomial at ``value`` and reduce to the range."""
        acc = 0
        x = value % MERSENNE_61
        for coefficient in self._coefficients:
            acc = _mod_mersenne_61(acc * x + coefficient)
        return acc % self.range_size

    def __repr__(self) -> str:
        return (
            f"PairwiseHashFamily(range_size={self.range_size}, "
            f"seed={self.seed}, degree={self.degree})"
        )
