"""Carter-Wegman universal hashing over a Mersenne-prime field.

The second-level hash tables of a Distinct-Count Sketch need mutually
independent hashes ``g_i : [m^2] -> [s]`` that map the pair domain
uniformly onto ``s`` buckets (Section 3).  We implement the classic
polynomial construction ``h(x) = ((a * x + b) mod p) mod s`` with
``p = 2^61 - 1``, which is pairwise independent and extremely fast to
evaluate because reduction modulo a Mersenne prime needs only shifts and
adds.

Higher-degree polynomials (k-wise independence) are available through
:class:`PairwiseHashFamily` with ``degree > 2``; the sketch analysis
only needs pairwise independence, but property tests use higher degrees
to confirm the implementation generalizes.
"""

from __future__ import annotations

import random
from typing import List

from ..exceptions import ParameterError
from .seeds import derive_seed

#: The Mersenne prime 2^61 - 1 used as the hash field modulus.
MERSENNE_61 = (1 << 61) - 1


def _mod_mersenne_61(value: int) -> int:
    """Reduce ``value`` modulo ``2^61 - 1`` without division.

    Works for any non-negative ``value`` below ``2^122``, which covers
    the products formed during polynomial evaluation.
    """
    value = (value & MERSENNE_61) + (value >> 61)
    if value >= MERSENNE_61:
        value -= MERSENNE_61
    return value


class CarterWegmanHash:
    """A pairwise-independent hash ``[universe] -> [range_size]``.

    Args:
        range_size: number of output buckets ``s``; must be positive.
        seed: integer seed determining the random coefficients.
        universe: (optional) size of the input domain, used only for
            sanity checks; inputs are reduced mod the field regardless.
    """

    __slots__ = ("range_size", "seed", "_a", "_b")

    def __init__(self, range_size: int, seed: int, universe: int = 0) -> None:
        if range_size < 1:
            raise ParameterError(
                f"hash range must be >= 1, got {range_size}"
            )
        if universe and universe > MERSENNE_61:
            raise ParameterError(
                "universe exceeds the 2^61 - 1 hash field; "
                "use TabulationHash for wider domains"
            )
        self.range_size = range_size
        self.seed = seed
        rng = random.Random(derive_seed(seed, "carter-wegman"))
        # a must be nonzero for the map to be pairwise independent.
        self._a = rng.randrange(1, MERSENNE_61)
        self._b = rng.randrange(0, MERSENNE_61)

    def __call__(self, value: int) -> int:
        """Hash ``value`` into ``[0, range_size)``."""
        return _mod_mersenne_61(self._a * (value % MERSENNE_61) + self._b) % self.range_size

    def field_value(self, value: int) -> int:
        """Return the full field element before the final mod-range step.

        Exposed for the geometric hash, which needs the raw randomized
        value rather than a bucket index.
        """
        return _mod_mersenne_61(self._a * (value % MERSENNE_61) + self._b)

    def __repr__(self) -> str:
        return (
            f"CarterWegmanHash(range_size={self.range_size}, seed={self.seed})"
        )


class PairwiseHashFamily:
    """A degree-``d`` polynomial hash family over the Mersenne field.

    Degree 2 gives pairwise independence (what the sketch needs);
    higher degrees give k-wise independence for k = degree.
    """

    __slots__ = ("range_size", "seed", "degree", "_coefficients")

    def __init__(self, range_size: int, seed: int, degree: int = 2) -> None:
        if range_size < 1:
            raise ParameterError(
                f"hash range must be >= 1, got {range_size}"
            )
        if degree < 1:
            raise ParameterError(f"degree must be >= 1, got {degree}")
        self.range_size = range_size
        self.seed = seed
        self.degree = degree
        rng = random.Random(derive_seed(seed, "poly-family", degree))
        coefficients: List[int] = [
            rng.randrange(0, MERSENNE_61) for _ in range(degree)
        ]
        # Leading coefficient nonzero keeps the polynomial degree exact.
        if coefficients[0] == 0:
            coefficients[0] = 1
        self._coefficients = coefficients

    def __call__(self, value: int) -> int:
        """Evaluate the polynomial at ``value`` and reduce to the range."""
        acc = 0
        x = value % MERSENNE_61
        for coefficient in self._coefficients:
            acc = _mod_mersenne_61(acc * x + coefficient)
        return acc % self.range_size

    def __repr__(self) -> str:
        return (
            f"PairwiseHashFamily(range_size={self.range_size}, "
            f"seed={self.seed}, degree={self.degree})"
        )
