"""The geometric first-level hash of the Distinct-Count Sketch.

Section 3 (footnote 5) prescribes a hash ``h : [m^2] -> {0..Theta(log m)}``
with ``Pr[h(x) = l] = 2^-(l+1)``, built by composing a uniform randomizer
``f`` with the least-significant-set-bit (LSB) operator:
``h(x) = LSB(f(x))``.  Half of all values land in level 0, a quarter in
level 1, and so on — the Flajolet-Martin trick the sketch generalizes.

We randomize with a tabulation hash (64 uniform output bits, far wider
than ``m^2`` for realistic ``m``, so the map is injective w.h.p. as the
footnote requires) and clamp the level to ``max_level`` so the sketch's
first-level array has a fixed size.
"""

from __future__ import annotations

from typing import Any

from .._accel import np as _np
from ..exceptions import ParameterError
from .seeds import derive_seed
from .tabulation import TabulationHash


def _build_tz_table() -> Any:
    """Trailing-zero lookup keyed by ``(1 << k) % 67``.

    67 is prime and 2 is a primitive root mod 67, so the 64 residues
    ``2^k mod 67`` are distinct and never zero — a perfect hash from an
    isolated low bit to its index.  Index 0 (the all-zero word) carries
    the :func:`lsb_index` convention of 63.
    """
    table = [63] * 67
    for k in range(64):
        table[(1 << k) % 67] = k
    return _np.array(table, dtype=_np.int64)


_TZ_TABLE: Any = _build_tz_table() if _np is not None else None


def lsb_index(value: int) -> int:
    """Index of the least-significant set bit of ``value``.

    ``lsb_index(0b1011) == 0``, ``lsb_index(0b1000) == 3``.  The all-zero
    word (probability ``2^-64``) conventionally maps to bit 63.
    """
    if value == 0:
        return 63
    return (value & -value).bit_length() - 1


class GeometricLevelHash:
    """Maps pair codes to sketch levels with geometric probabilities.

    Args:
        max_level: highest level index; outputs are in ``[0, max_level]``.
            The paper sizes this as ``Theta(log m)``; callers typically
            pass ``2 * log2(m) + 1`` so that level probabilities cover
            the whole pair domain.  ``max_level = 0`` is the degenerate
            single-level hash (every value maps to level 0).
        seed: seed for the underlying uniform randomizer.
    """

    __slots__ = ("max_level", "seed", "_randomizer")

    def __init__(self, max_level: int, seed: int) -> None:
        if max_level < 0:
            raise ParameterError(
                f"max_level must be >= 0, got {max_level}"
            )
        self.max_level = max_level
        self.seed = seed
        self._randomizer = TabulationHash(
            range_size=1, seed=derive_seed(seed, "geometric-randomizer")
        )

    @property
    def num_levels(self) -> int:
        """Number of distinct levels produced (``max_level + 1``)."""
        return self.max_level + 1

    def __call__(self, value: int) -> int:
        """Return the level of ``value``: LSB of its randomized word."""
        level = lsb_index(self._randomizer.word(value))
        return level if level < self.max_level else self.max_level

    def levels_many(self, values: Any) -> Any:  # hot-path
        """Levels for a batch of values, bit-identical to ``self(v)``.

        Vectorized when numpy is available: tabulated words, then the
        isolated low bit ``w & -w`` mapped to its index through the
        mod-67 perfect-hash table (integer-only — no float log2, no
        version-gated popcount).  Returns a numpy ``int64`` array on
        that path, else a list of ints.
        """
        words = self._randomizer.words_many(values)
        if isinstance(words, list) or _TZ_TABLE is None:
            max_level = self.max_level
            out = []
            append = out.append
            for word in words:
                if word == 0:
                    append(min(63, max_level))
                    continue
                level = (word & -word).bit_length() - 1
                append(level if level < max_level else max_level)
            return out
        low_bit = words & (~words + _np.uint64(1))
        levels = _TZ_TABLE[(low_bit % _np.uint64(67)).astype(_np.int64)]
        return _np.minimum(levels, self.max_level)

    def level_probability(self, level: int) -> float:
        """Exact probability that a uniformly random value maps to ``level``.

        Levels below ``max_level`` have probability ``2^-(level+1)``; the
        top level absorbs the remaining tail mass.
        """
        if not 0 <= level <= self.max_level:
            raise ParameterError(
                f"level {level} outside [0, {self.max_level}]"
            )
        if level < self.max_level:
            return 2.0 ** -(level + 1)
        return 2.0 ** -self.max_level

    def __repr__(self) -> str:
        return (
            f"GeometricLevelHash(max_level={self.max_level}, seed={self.seed})"
        )
