"""The geometric first-level hash of the Distinct-Count Sketch.

Section 3 (footnote 5) prescribes a hash ``h : [m^2] -> {0..Theta(log m)}``
with ``Pr[h(x) = l] = 2^-(l+1)``, built by composing a uniform randomizer
``f`` with the least-significant-set-bit (LSB) operator:
``h(x) = LSB(f(x))``.  Half of all values land in level 0, a quarter in
level 1, and so on — the Flajolet-Martin trick the sketch generalizes.

We randomize with a tabulation hash (64 uniform output bits, far wider
than ``m^2`` for realistic ``m``, so the map is injective w.h.p. as the
footnote requires) and clamp the level to ``max_level`` so the sketch's
first-level array has a fixed size.
"""

from __future__ import annotations

from ..exceptions import ParameterError
from .seeds import derive_seed
from .tabulation import TabulationHash


def lsb_index(value: int) -> int:
    """Index of the least-significant set bit of ``value``.

    ``lsb_index(0b1011) == 0``, ``lsb_index(0b1000) == 3``.  The all-zero
    word (probability ``2^-64``) conventionally maps to bit 63.
    """
    if value == 0:
        return 63
    return (value & -value).bit_length() - 1


class GeometricLevelHash:
    """Maps pair codes to sketch levels with geometric probabilities.

    Args:
        max_level: highest level index; outputs are in ``[0, max_level]``.
            The paper sizes this as ``Theta(log m)``; callers typically
            pass ``2 * log2(m) + 1`` so that level probabilities cover
            the whole pair domain.  ``max_level = 0`` is the degenerate
            single-level hash (every value maps to level 0).
        seed: seed for the underlying uniform randomizer.
    """

    __slots__ = ("max_level", "seed", "_randomizer")

    def __init__(self, max_level: int, seed: int) -> None:
        if max_level < 0:
            raise ParameterError(
                f"max_level must be >= 0, got {max_level}"
            )
        self.max_level = max_level
        self.seed = seed
        self._randomizer = TabulationHash(
            range_size=1, seed=derive_seed(seed, "geometric-randomizer")
        )

    @property
    def num_levels(self) -> int:
        """Number of distinct levels produced (``max_level + 1``)."""
        return self.max_level + 1

    def __call__(self, value: int) -> int:
        """Return the level of ``value``: LSB of its randomized word."""
        level = lsb_index(self._randomizer.word(value))
        return level if level < self.max_level else self.max_level

    def level_probability(self, level: int) -> float:
        """Exact probability that a uniformly random value maps to ``level``.

        Levels below ``max_level`` have probability ``2^-(level+1)``; the
        top level absorbs the remaining tail mass.
        """
        if not 0 <= level <= self.max_level:
            raise ParameterError(
                f"level {level} outside [0, {self.max_level}]"
            )
        if level < self.max_level:
            return 2.0 ** -(level + 1)
        return 2.0 ** -self.max_level

    def __repr__(self) -> str:
        return (
            f"GeometricLevelHash(max_level={self.max_level}, seed={self.seed})"
        )
