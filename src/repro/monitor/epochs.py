"""Epoch rotation: bounding the age of tracked state.

A long-running monitor should not let week-old half-open flows (e.g.
from exporters that crashed before emitting the teardown) pollute the
current picture.  :class:`EpochRotator` maintains a small ring of
tracking sketches, one per epoch:

* every update is applied to all live sketches;
* every ``epoch_length`` updates, the oldest sketch is retired and a
  fresh one starts;
* queries go to the *oldest live* sketch — a sliding window with
  granularity ``epoch_length``.

Mind the exact coverage: right after a rotation the oldest live sketch
has seen only the last ``window_epochs - 1`` *completed* epochs, and it
grows from there until the next rotation.  The query window therefore
covers between ``(window_epochs - 1) * epoch_length`` and
``window_epochs * epoch_length`` updates, dropping discontinuously by
one epoch at every boundary — estimates dip at rotations, and a
crossing detector polling the rotator can flap (a spurious down/up
pair) around them.  An attack straddling a boundary is split across two
query sketches and may stay under threshold in both.  When those
boundary artifacts matter, use
:class:`~repro.monitor.SlidingWindowSketch`, whose subtract-merge
window moves at sub-epoch granularity instead of being rebuilt
(``docs/windowing.md``).

This uses only insert/delete machinery the paper already provides (the
sketches are independent), and inherits all its guarantees.  It is the
natural deployment companion the paper leaves as engineering.
"""

from __future__ import annotations

from typing import Callable, Deque, Iterable, Optional
from collections import deque

from ..exceptions import ParameterError
from ..obs.catalog import MONITOR_EPOCH_LIVE_SKETCHES, MONITOR_EPOCH_ROTATIONS
from ..obs.registry import Registry, registry_or_null
from ..obs.trace import span as trace_span
from ..sketch import TrackingDistinctCountSketch
from ..sketch.estimate import TopKResult
from ..types import AddressDomain, FlowUpdate


class EpochRotator:
    """A sliding-window monitor built from rotating tracking sketches.

    Args:
        domain: address domain.
        epoch_length: updates per epoch.
        window_epochs: number of epochs a query should cover.
        seed: base seed; epoch ``i`` uses ``seed + i`` so concurrent
            sketches are independent.
        r, s: sketch shape.
        obs: optional :class:`~repro.obs.Registry` for rotator-level
            metrics.  The short-lived epoch sketches themselves stay
            uninstrumented: attaching them would accumulate pull-gauge
            callbacks from retired sketches in the registry.
        on_rotate: optional callback invoked with the rotator right
            after each epoch boundary (not for the initial epoch).
            This is the natural checkpoint trigger: epoch boundaries
            are quiet points where the query sketch just changed, so a
            crash-safe deployment checkpoints its
            :class:`~repro.resilience.durable.DurableSketch` (or
            supervisor) here — see ``docs/recovery.md``.  Exceptions
            propagate to the ``observe`` caller.

    Example:
        >>> from repro.types import AddressDomain
        >>> rotator = EpochRotator(AddressDomain(2 ** 16),
        ...                        epoch_length=100, window_epochs=2)
        >>> for source in range(250):
        ...     rotator.observe(FlowUpdate(source, 7, 1))
        >>> rotator.top_k(1).destinations
        [7]
    """

    def __init__(
        self,
        domain: AddressDomain,
        epoch_length: int,
        window_epochs: int = 2,
        seed: int = 0,
        r: int = 3,
        s: int = 128,
        obs: Optional[Registry] = None,
        on_rotate: Optional[Callable[["EpochRotator"], None]] = None,
    ) -> None:
        if epoch_length < 1:
            raise ParameterError(
                f"epoch_length must be >= 1, got {epoch_length}"
            )
        if window_epochs < 1:
            raise ParameterError(
                f"window_epochs must be >= 1, got {window_epochs}"
            )
        self.domain = domain
        self.epoch_length = epoch_length
        self.window_epochs = window_epochs
        self.seed = seed
        self.r = r
        self.s = s
        self.on_rotate = on_rotate
        self._epoch_index = 0
        self._updates_in_epoch = 0
        self._sketches: Deque[TrackingDistinctCountSketch] = deque()
        self.obs: Registry = registry_or_null(obs)
        self._obs_rotations = self.obs.counter_from(MONITOR_EPOCH_ROTATIONS)
        self.obs.gauge_from(MONITOR_EPOCH_LIVE_SKETCHES).watch(
            lambda: len(self._sketches)
        )
        self._start_new_epoch()

    def _start_new_epoch(self) -> None:
        """Open a fresh sketch; retire the oldest beyond the window."""
        with trace_span("monitor.epoch_rotate"):
            sketch = TrackingDistinctCountSketch(
                self.domain, r=self.r, s=self.s,
                seed=self.seed + self._epoch_index,
            )
            self._sketches.append(sketch)
            self._epoch_index += 1
            self._obs_rotations.inc()
            while len(self._sketches) > self.window_epochs:
                self._sketches.popleft()

    # -- ingestion ----------------------------------------------------------------

    def observe(self, update: FlowUpdate) -> None:
        """Apply one update to every live epoch sketch."""
        for sketch in self._sketches:
            sketch.process(update)
        self._updates_in_epoch += 1
        if self._updates_in_epoch >= self.epoch_length:
            self._updates_in_epoch = 0
            self._start_new_epoch()
            if self.on_rotate is not None:
                self.on_rotate(self)

    def observe_stream(self, updates: Iterable[FlowUpdate]) -> int:
        """Apply a whole stream; returns the update count."""
        count = 0
        for update in updates:
            self.observe(update)
            count += 1
        return count

    # -- queries ---------------------------------------------------------------------

    @property
    def query_sketch(self) -> TrackingDistinctCountSketch:
        """The oldest live sketch.

        Covers the last ``window_epochs - 1`` completed epochs plus the
        open one — i.e. at least ``(window_epochs - 1) * epoch_length``
        updates, one full epoch short of the nominal window right after
        a rotation (see the module docstring).
        """
        return self._sketches[0]

    def top_k(self, k: int) -> TopKResult:
        """Top-k over (approximately) the last ``window_epochs`` epochs."""
        return self.query_sketch.track_topk(k)

    def threshold(self, tau: int) -> TopKResult:
        """Threshold query over the query window."""
        return self.query_sketch.track_threshold(tau)

    @property
    def epochs_started(self) -> int:
        """Total epochs opened since construction."""
        return self._epoch_index

    @property
    def live_sketches(self) -> int:
        """Number of concurrent sketches (bounded by window_epochs)."""
        return len(self._sketches)

    def space_bytes(self) -> int:
        """Combined model space of all live sketches."""
        return sum(sketch.space_bytes() for sketch in self._sketches)

    def __repr__(self) -> str:
        return (
            f"EpochRotator(epoch={self._epoch_index}, "
            f"live={len(self._sketches)}, "
            f"epoch_length={self.epoch_length})"
        )
