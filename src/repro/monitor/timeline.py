"""Monitoring timelines: retrospective views of tracked estimates.

After an incident, operators ask questions the live monitor cannot
answer from current state alone: *when* did the victim's half-open
count start climbing, how fast, and when did mitigation bite?
:class:`MonitorTimeline` records periodic top-k snapshots into a
bounded ring and answers those questions:

* :meth:`series` — one destination's estimate over stream positions;
* :meth:`first_exceeding` — when a destination first crossed a level;
* :meth:`peak` — a destination's maximum observed estimate;
* :meth:`snapshot_at` — the whole top-k view nearest a position.

Space is bounded: ``capacity`` snapshots of ``k`` entries each.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..exceptions import ParameterError
from ..obs.catalog import MONITOR_SNAPSHOTS
from ..obs.registry import Registry, registry_or_null
from ..sketch import TrackingDistinctCountSketch
from ..types import FlowUpdate


@dataclass(frozen=True)
class Snapshot:
    """One recorded top-k view.

    Attributes:
        position: stream position (updates processed) at capture time.
        estimates: ``{dest: estimate}`` of the top-k at that moment.
    """

    position: int
    estimates: Dict[int, int]


class MonitorTimeline:
    """A tracking sketch plus a bounded history of its top-k views.

    Args:
        sketch: the tracking sketch to snapshot (owned by the caller —
            the timeline only reads it).
        k: how many destinations each snapshot records.
        snapshot_interval: capture a snapshot every this many updates.
        capacity: maximum retained snapshots (oldest evicted first).
        obs: optional :class:`~repro.obs.Registry` counting captured
            snapshots (``repro_monitor_snapshots_total``).
    """

    def __init__(
        self,
        sketch: TrackingDistinctCountSketch,
        k: int = 10,
        snapshot_interval: int = 1000,
        capacity: int = 1024,
        obs: Optional[Registry] = None,
    ) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if snapshot_interval < 1:
            raise ParameterError(
                f"snapshot_interval must be >= 1, got {snapshot_interval}"
            )
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.sketch = sketch
        self.k = k
        self.snapshot_interval = snapshot_interval
        self.capacity = capacity
        self._snapshots: Deque[Snapshot] = deque(maxlen=capacity)
        self._position = 0
        self.obs: Registry = registry_or_null(obs)
        self._obs_snapshots = self.obs.counter_from(MONITOR_SNAPSHOTS)

    # -- ingestion ---------------------------------------------------------

    def observe(self, update: FlowUpdate) -> Optional[Snapshot]:
        """Feed one update; returns the snapshot if one was captured."""
        self.sketch.process(update)
        self._position += 1
        if self._position % self.snapshot_interval == 0:
            return self.capture()
        return None

    def observe_stream(self, updates) -> int:
        """Feed a whole stream; returns the update count."""
        count = 0
        for update in updates:
            self.observe(update)
            count += 1
        return count

    def capture(self) -> Snapshot:
        """Capture a snapshot now (also called on the interval)."""
        snapshot = Snapshot(
            position=self._position,
            estimates=self.sketch.track_topk(self.k).as_dict(),
        )
        self._snapshots.append(snapshot)
        self._obs_snapshots.inc()
        return snapshot

    # -- retrospective queries ------------------------------------------------

    @property
    def snapshots(self) -> List[Snapshot]:
        """All retained snapshots, oldest first."""
        return list(self._snapshots)

    def series(self, dest: int) -> List[Tuple[int, int]]:
        """``(position, estimate)`` samples for one destination.

        Positions where the destination was outside the recorded top-k
        report an estimate of 0 (it was not distinguishable from noise
        at that capture).
        """
        return [
            (snapshot.position, snapshot.estimates.get(dest, 0))
            for snapshot in self._snapshots
        ]

    def first_exceeding(self, dest: int, level: int) -> Optional[int]:
        """First recorded position where ``dest``'s estimate >= level."""
        if level < 1:
            raise ParameterError(f"level must be >= 1, got {level}")
        for snapshot in self._snapshots:
            if snapshot.estimates.get(dest, 0) >= level:
                return snapshot.position
        return None

    def peak(self, dest: int) -> Tuple[Optional[int], int]:
        """``(position, estimate)`` of the destination's maximum."""
        best_position: Optional[int] = None
        best_estimate = 0
        for snapshot in self._snapshots:
            estimate = snapshot.estimates.get(dest, 0)
            if estimate > best_estimate:
                best_estimate = estimate
                best_position = snapshot.position
        return best_position, best_estimate

    def snapshot_at(self, position: int) -> Optional[Snapshot]:
        """The retained snapshot nearest (at or before) ``position``."""
        candidate: Optional[Snapshot] = None
        for snapshot in self._snapshots:
            if snapshot.position <= position:
                candidate = snapshot
            else:
                break
        return candidate

    @property
    def position(self) -> int:
        """Updates processed so far."""
        return self._position

    def __len__(self) -> int:
        return len(self._snapshots)

    def __repr__(self) -> str:
        return (
            f"MonitorTimeline(position={self._position}, "
            f"snapshots={len(self._snapshots)})"
        )
