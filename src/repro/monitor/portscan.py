"""Port-scan / worm-propagation detection: the footnote-1 application.

Footnote 1 of the paper: "Our top-k distinct frequencies tracking
algorithms can also be used to identify hosts that contact many distinct
destinations during port scans (mostly for worm propagation)."

The trick is pure symmetry: feed the sketch the pair ``(dest, source)``
instead of ``(source, dest)`` and the tracked quantity becomes the
number of distinct *destinations* each *source* contacts — the
superspreader/scanner metric.  :class:`PortScanDetector` packages that,
including the deletion convention (a completed, legitimate exchange can
be removed so long-lived busy clients don't look like scanners).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..exceptions import ParameterError
from ..sketch import TrackingDistinctCountSketch
from ..sketch.estimate import TopKResult
from ..types import AddressDomain, FlowUpdate


class PortScanDetector:
    """Track top-k sources by distinct contacted destinations.

    Args:
        domain: address domain.
        seed, r, s: underlying sketch configuration.

    Example:
        >>> from repro.types import AddressDomain
        >>> detector = PortScanDetector(AddressDomain(2 ** 16), seed=1)
        >>> for dest in range(300):
        ...     detector.record_contact(source=9, dest=dest)
        >>> detector.top_scanners(1).destinations
        [9]
    """

    def __init__(
        self,
        domain: AddressDomain,
        seed: int = 0,
        r: int = 3,
        s: int = 128,
    ) -> None:
        self.domain = domain
        # The sketch is direction-agnostic; we simply swap the roles.
        self.sketch = TrackingDistinctCountSketch(domain, r=r, s=s,
                                                  seed=seed)

    def record_contact(self, source: int, dest: int) -> None:
        """A source contacted a destination (e.g. sent a SYN)."""
        self.sketch.insert(dest, source)

    def discount_contact(self, source: int, dest: int) -> None:
        """Remove a contact established as legitimate."""
        self.sketch.delete(dest, source)

    def observe(self, update: FlowUpdate) -> None:
        """Consume a flow update, swapping the pair roles."""
        self.sketch.update(update.dest, update.source, update.delta)

    def observe_stream(self, updates: Iterable[FlowUpdate]) -> int:
        """Consume a whole update stream; returns the count."""
        count = 0
        for update in updates:
            self.observe(update)
            count += 1
        return count

    def top_scanners(self, k: int) -> TopKResult:
        """Top-k sources by estimated distinct contacted destinations.

        The returned entries' ``dest`` field holds the *source* address
        (the sketch's destination role), per the role swap.
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        return self.sketch.track_topk(k)

    def scanners_above(self, tau: int) -> List[Tuple[int, int]]:
        """All sources contacting at least ~tau distinct destinations."""
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        result = self.sketch.track_threshold(tau)
        return [(entry.dest, entry.estimate) for entry in result]

    def space_bytes(self) -> int:
        """Model space of the underlying sketch."""
        return self.sketch.space_bytes()

    def __repr__(self) -> str:
        return f"PortScanDetector(sketch={self.sketch!r})"
