"""Alarm records emitted by the DDoS monitor."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional


class AlarmSeverity(enum.Enum):
    """How far above its baseline a destination's frequency is."""

    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Alarm:
    """One potential-DDoS alarm.

    Attributes:
        dest: the destination suspected to be under attack.
        estimated_frequency: the sketch's distinct-source frequency
            estimate at alarm time.
        baseline_frequency: the profile's expected frequency for this
            destination (0 for previously unseen destinations).
        severity: warning or critical, per the monitor's thresholds.
        updates_seen: stream position (number of updates processed)
            when the alarm fired.
    """

    dest: int
    estimated_frequency: int
    baseline_frequency: float
    severity: AlarmSeverity
    updates_seen: int

    @property
    def excess_ratio(self) -> float:
        """Estimate over baseline (baseline floored at 1)."""
        return self.estimated_frequency / max(self.baseline_frequency, 1.0)


class AlarmSink:
    """Collects alarms, de-duplicating repeats for the same destination.

    A destination alarms again only if its severity escalates or after
    :attr:`renotify_after` further stream updates — a monitor that
    re-fires on every poll would be operationally useless.
    """

    def __init__(self, renotify_after: int = 100_000) -> None:
        self.renotify_after = renotify_after
        self._alarms: List[Alarm] = []
        self._last_fired: dict = {}
        self._listeners: List[Callable[[Alarm], None]] = []

    def subscribe(self, listener: Callable[[Alarm], None]) -> None:
        """Register a callback invoked for every accepted alarm."""
        self._listeners.append(listener)

    def offer(self, alarm: Alarm) -> bool:
        """Submit an alarm; returns True if it was accepted (not a dup)."""
        previous = self._last_fired.get(alarm.dest)
        if previous is not None:
            escalated = (
                previous.severity is AlarmSeverity.WARNING
                and alarm.severity is AlarmSeverity.CRITICAL
            )
            stale = (
                alarm.updates_seen - previous.updates_seen
                >= self.renotify_after
            )
            if not escalated and not stale:
                return False
        self._last_fired[alarm.dest] = alarm
        self._alarms.append(alarm)
        for listener in self._listeners:
            listener(alarm)
        return True

    @property
    def alarms(self) -> List[Alarm]:
        """All accepted alarms, in firing order."""
        return list(self._alarms)

    def alarms_for(self, dest: int) -> List[Alarm]:
        """Accepted alarms for one destination."""
        return [alarm for alarm in self._alarms if alarm.dest == dest]

    def latest(self) -> Optional[Alarm]:
        """The most recent accepted alarm, if any."""
        return self._alarms[-1] if self._alarms else None

    def __len__(self) -> int:
        return len(self._alarms)
