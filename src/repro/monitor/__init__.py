"""The DDoS MONITOR application layer (Figure 1).

Wraps the tracking sketch into the operational tool the paper
describes: continuous top-k tracking over one or more flow-update
streams, comparison "against 'baseline' profiles of network activity
created over longer periods of time" (Section 2), and alarm generation
for destinations whose half-open distinct-source frequency is anomalous.

* :class:`DDoSMonitor` — the facade: feed updates, poll for alarms.
* :class:`ActivityProfile` — per-destination baseline frequencies with
  an anomaly test.
* :class:`Alarm` / :class:`AlarmSink` — alarm records and collection.
* :class:`ThresholdWatch` — the footnote-3 variant: watch for any
  destination crossing a fixed frequency threshold tau.
* :class:`SlidingWindowSketch` / :class:`WindowedThresholdWatch` — the
  exact subtract-merge sliding window and burst-aware crossing
  detection over it (``docs/windowing.md``).
"""

from .alarms import Alarm, AlarmSeverity, AlarmSink
from .epochs import EpochRotator
from .monitor import DDoSMonitor, MonitorConfig
from .portscan import PortScanDetector
from .profile import ActivityProfile
from .report import Incident, IncidentReporter
from .threshold import CrossingEvent, ThresholdWatch
from .timeline import MonitorTimeline, Snapshot
from .window import SlidingWindowSketch, WindowedThresholdWatch

__all__ = [
    "ActivityProfile",
    "Alarm",
    "AlarmSeverity",
    "AlarmSink",
    "CrossingEvent",
    "DDoSMonitor",
    "EpochRotator",
    "Incident",
    "IncidentReporter",
    "MonitorConfig",
    "MonitorTimeline",
    "PortScanDetector",
    "SlidingWindowSketch",
    "Snapshot",
    "ThresholdWatch",
    "WindowedThresholdWatch",
]
