"""Incident reports: turning alarms into operator-facing summaries.

A monitor that only yields `Alarm` objects leaves the last mile to the
operator.  :class:`IncidentReporter` groups alarms into *incidents*
(one per destination, merging alarms closer than a gap threshold),
tracks their lifecycle, and renders plain-text summaries suitable for a
ticket or a pager message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..exceptions import ParameterError
from ..netsim.addresses import format_ip
from .alarms import Alarm, AlarmSeverity


@dataclass
class Incident:
    """One suspected-attack incident against a destination.

    Attributes:
        dest: the destination under suspicion.
        first_alarm: the alarm that opened the incident.
        last_alarm: the most recent alarm folded in.
        alarm_count: alarms folded into this incident.
        peak_frequency: largest estimated frequency observed.
        peak_severity: worst severity observed.
        closed_at: stream position at which the incident was closed
            (None while open).
    """

    dest: int
    first_alarm: Alarm
    last_alarm: Alarm
    alarm_count: int = 1
    peak_frequency: int = 0
    peak_severity: AlarmSeverity = AlarmSeverity.WARNING
    closed_at: Optional[int] = None

    @property
    def is_open(self) -> bool:
        """True while the incident has not been closed."""
        return self.closed_at is None

    def absorb(self, alarm: Alarm) -> None:
        """Fold a further alarm for the same destination in."""
        self.last_alarm = alarm
        self.alarm_count += 1
        self.peak_frequency = max(self.peak_frequency,
                                  alarm.estimated_frequency)
        if (self.peak_severity is AlarmSeverity.WARNING
                and alarm.severity is AlarmSeverity.CRITICAL):
            self.peak_severity = AlarmSeverity.CRITICAL

    def summary(self) -> str:
        """One-line operator summary."""
        state = "OPEN" if self.is_open else "closed"
        return (
            f"[{self.peak_severity.value.upper():8s}] {state:6s} "
            f"dest={format_ip(self.dest)} "
            f"peak~{self.peak_frequency} half-open sources "
            f"({self.alarm_count} alarms, first at update "
            f"{self.first_alarm.updates_seen})"
        )


class IncidentReporter:
    """Groups alarms into incidents and renders reports.

    Args:
        merge_gap: alarms for the same destination within this many
            stream updates of the incident's last alarm join it; a
            larger gap opens a fresh incident.
    """

    def __init__(self, merge_gap: int = 500_000) -> None:
        if merge_gap < 1:
            raise ParameterError(f"merge_gap must be >= 1, got {merge_gap}")
        self.merge_gap = merge_gap
        self._incidents: List[Incident] = []
        self._open_by_dest: Dict[int, Incident] = {}

    def ingest(self, alarm: Alarm) -> Incident:
        """Fold one alarm in; returns the (possibly new) incident."""
        incident = self._open_by_dest.get(alarm.dest)
        if incident is not None:
            gap = alarm.updates_seen - incident.last_alarm.updates_seen
            if gap <= self.merge_gap:
                incident.absorb(alarm)
                return incident
            incident.closed_at = alarm.updates_seen
            del self._open_by_dest[alarm.dest]
        incident = Incident(
            dest=alarm.dest,
            first_alarm=alarm,
            last_alarm=alarm,
            peak_frequency=alarm.estimated_frequency,
            peak_severity=alarm.severity,
        )
        self._incidents.append(incident)
        self._open_by_dest[alarm.dest] = incident
        return incident

    def ingest_all(self, alarms: List[Alarm]) -> None:
        """Fold a batch of alarms in, in order."""
        for alarm in alarms:
            self.ingest(alarm)

    def close(self, dest: int, at_update: int) -> Optional[Incident]:
        """Close the open incident for ``dest`` (attack mitigated)."""
        incident = self._open_by_dest.pop(dest, None)
        if incident is not None:
            incident.closed_at = at_update
        return incident

    @property
    def incidents(self) -> List[Incident]:
        """All incidents, oldest first."""
        return list(self._incidents)

    def open_incidents(self) -> List[Incident]:
        """Currently open incidents."""
        return [i for i in self._incidents if i.is_open]

    def render(self) -> str:
        """The full plain-text report."""
        if not self._incidents:
            return "no incidents"
        lines = [
            f"{len(self._incidents)} incident(s), "
            f"{len(self.open_incidents())} open"
        ]
        lines += [incident.summary() for incident in self._incidents]
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._incidents)
