"""Threshold tracking: the Section 2 footnote-3 variant.

"Our techniques and results also easily extend to the problem of
tracking all destinations v with f_v >= tau, for some fixed threshold
tau."  :class:`ThresholdWatch` packages that: it maintains a tracking
sketch and reports, on demand or continuously, every destination whose
estimated distinct-source frequency clears ``tau`` — together with
crossing events (a destination newly clearing or dropping below the
threshold), which is the natural alerting interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..exceptions import ParameterError
from ..obs.catalog import MONITOR_THRESHOLD_CROSSINGS
from ..obs.instruments import Counter
from ..obs.recorder import current_recorder
from ..obs.registry import Registry, registry_or_null
from ..sketch import TrackingDistinctCountSketch
from ..types import AddressDomain, FlowUpdate


@dataclass(frozen=True)
class CrossingEvent:
    """A destination crossing the threshold, in either direction.

    Attributes:
        dest: the destination address.
        estimate: its frequency estimate at the poll that saw the cross.
        above: True for an upward cross (newly over tau), False for a
            downward cross (dropped below tau — e.g. the flows were
            legitimised by deletions).
        updates_seen: stream position of the poll.
    """

    dest: int
    estimate: int
    above: bool
    updates_seen: int


def diff_crossings(
    now_above: Dict[int, int],
    previously_above: Set[int],
    updates_seen: int,
) -> List[CrossingEvent]:
    """Crossing events implied by two consecutive threshold polls.

    Compares the destinations over the threshold *now* against the set
    that was over it at the previous poll: destinations present only in
    ``now_above`` raise an upward crossing (with their fresh estimate),
    destinations that vanished raise a downward one (estimate 0 — the
    query no longer reports them).  Shared by :class:`ThresholdWatch`
    and :class:`~repro.monitor.window.WindowedThresholdWatch` so both
    engines emit identically-shaped events.
    """
    events: List[CrossingEvent] = []
    for dest, estimate in now_above.items():
        if dest not in previously_above:
            events.append(
                CrossingEvent(
                    dest=dest,
                    estimate=estimate,
                    above=True,
                    updates_seen=updates_seen,
                )
            )
    for dest in list(previously_above):
        if dest not in now_above:
            events.append(
                CrossingEvent(
                    dest=dest,
                    estimate=0,
                    above=False,
                    updates_seen=updates_seen,
                )
            )
    return events


def publish_crossings(
    events: List[CrossingEvent],
    obs_cross_up: Counter,
    obs_cross_down: Counter,
) -> None:
    """Export crossing events to metrics and the flight recorder."""
    recorder = current_recorder()
    for event in events:
        if event.above:
            obs_cross_up.inc()
        else:
            obs_cross_down.inc()
        recorder.record(
            "threshold_crossing",
            dest=event.dest,
            estimate=event.estimate,
            direction="up" if event.above else "down",
            updates_seen=event.updates_seen,
        )


class ThresholdWatch:
    """Continuously track all destinations with ``f_v >= tau``.

    Args:
        domain: address domain.
        tau: the frequency threshold.
        check_interval: poll the sketch every this many updates.
        seed, r, s: sketch configuration.
        obs: optional :class:`~repro.obs.Registry`, shared with the
            inner tracking sketch; crossing events export as
            ``repro_monitor_threshold_crossings_total{direction=...}``.
    """

    def __init__(
        self,
        domain: AddressDomain,
        tau: int,
        check_interval: int = 1000,
        seed: int = 0,
        r: int = 3,
        s: int = 128,
        obs: Optional[Registry] = None,
    ) -> None:
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        if check_interval < 1:
            raise ParameterError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        self.tau = tau
        self.check_interval = check_interval
        self.sketch = TrackingDistinctCountSketch(
            domain, r=r, s=s, seed=seed, obs=obs
        )
        self._updates_seen = 0
        self._currently_above: Set[int] = set()
        self._events: List[CrossingEvent] = []
        self.obs: Registry = registry_or_null(obs)
        crossings = self.obs.counter_from(MONITOR_THRESHOLD_CROSSINGS)
        self._obs_cross_up = crossings.labels(direction="up")
        self._obs_cross_down = crossings.labels(direction="down")

    def observe(self, update: FlowUpdate) -> List[CrossingEvent]:
        """Feed one update; returns crossing events from a due poll."""
        self.sketch.process(update)
        self._updates_seen += 1
        if self._updates_seen % self.check_interval == 0:
            return self.poll()
        return []

    def observe_stream(
        self, updates: Iterable[FlowUpdate]
    ) -> List[CrossingEvent]:
        """Feed a whole stream; returns all crossing events raised."""
        raised: List[CrossingEvent] = []
        for update in updates:
            raised.extend(self.observe(update))
        return raised

    def poll(self) -> List[CrossingEvent]:
        """Query the sketch now and emit crossing events."""
        result = self.sketch.track_threshold(self.tau)
        now_above: Dict[int, int] = result.as_dict()
        events = diff_crossings(
            now_above, self._currently_above, self._updates_seen
        )
        self._currently_above = set(now_above)
        self._events.extend(events)
        publish_crossings(events, self._obs_cross_up, self._obs_cross_down)
        return events

    def above_threshold(self) -> List[Tuple[int, int]]:
        """Current ``(dest, estimate)`` list over the threshold."""
        return [
            (entry.dest, entry.estimate)
            for entry in self.sketch.track_threshold(self.tau)
        ]

    @property
    def events(self) -> List[CrossingEvent]:
        """All crossing events observed so far."""
        return list(self._events)

    @property
    def updates_seen(self) -> int:
        """Number of flow updates processed so far."""
        return self._updates_seen

    def __repr__(self) -> str:
        return (
            f"ThresholdWatch(tau={self.tau}, updates={self._updates_seen}, "
            f"above={len(self._currently_above)})"
        )
