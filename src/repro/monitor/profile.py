"""Baseline activity profiles.

Section 2: the monitor identifies DDoS activity "by comparing against
'baseline' profiles of network activity created over longer periods of
time".  :class:`ActivityProfile` is that baseline: per-destination
expected distinct-source frequencies learned from clean traffic (via an
exponentially-weighted mean), plus a default for never-seen
destinations.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..exceptions import ParameterError


class ActivityProfile:
    """Per-destination baseline distinct-source frequencies.

    Args:
        default_frequency: baseline assumed for destinations never seen
            during profiling (new servers appear all the time; a small
            non-zero default avoids divide-by-zero anomaly scores).
        smoothing: EWMA weight of the newest observation when learning.
    """

    def __init__(
        self, default_frequency: float = 1.0, smoothing: float = 0.3
    ) -> None:
        if default_frequency <= 0:
            raise ParameterError(
                f"default_frequency must be > 0, got {default_frequency}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise ParameterError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.default_frequency = default_frequency
        self.smoothing = smoothing
        self._baselines: Dict[int, float] = {}

    def learn(self, frequencies: Mapping[int, int]) -> None:
        """Fold one profiling snapshot into the baseline (EWMA)."""
        for dest, frequency in frequencies.items():
            old = self._baselines.get(dest)
            if old is None:
                self._baselines[dest] = float(frequency)
            else:
                self._baselines[dest] = (
                    (1.0 - self.smoothing) * old
                    + self.smoothing * frequency
                )

    def baseline(self, dest: int) -> float:
        """Expected frequency for ``dest`` (the default if unseen)."""
        return self._baselines.get(dest, self.default_frequency)

    def anomaly_score(self, dest: int, observed: float) -> float:
        """How many times above baseline the observation is (>= 0)."""
        return observed / max(self.baseline(dest), 1e-9)

    def known_destinations(self) -> Dict[int, float]:
        """A copy of the learned baselines."""
        return dict(self._baselines)

    def __len__(self) -> int:
        return len(self._baselines)

    def __repr__(self) -> str:
        return f"ActivityProfile(destinations={len(self._baselines)})"
