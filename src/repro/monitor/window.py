"""Sliding-window detection: exact windows by subtract-merge.

:class:`~repro.monitor.EpochRotator` bounds the age of tracked state,
but its query window only moves at epoch granularity: an attack shorter
than an epoch — or one straddling an epoch boundary — can be diluted or
seen late.  Approximate sliding-window schemes (Memento's heavy-hitter
windows, ALBUS's burst monitoring) exist precisely because most sketches
cannot *remove* expired updates.  Ours can: the Distinct-Count Sketch is
a linear transform of the update stream (Section 3), so the sketch of
the expired sub-stream can be merged out with −1 multiplicity and the
remaining state is bit-for-bit the sketch of the surviving updates.

:class:`SlidingWindowSketch` exploits that.  It slices the stream into
*sub-epochs* of ``subepoch_length`` updates and keeps

* a ring of the most recent closed sub-epoch sketches, and
* one running **window sum** fed every update directly;

crossing a sub-epoch boundary closes the open sketch into the ring and,
once a sketch ages past ``window_subepochs``, subtracts it from the sum
(:meth:`~repro.sketch.DistinctCountSketch.subtract`).  The sum is at
every instant exactly the sketch of the last ``window_subepochs``
sub-epochs (the open one included) — not an approximation of it — so
every paper guarantee applies verbatim to the windowed estimates.  See
``docs/windowing.md`` for the model end to end.

All ring sketches and the sum share one seed: subtraction, like merging,
is only exact between sketches drawn from the same hash functions.
"""

from __future__ import annotations

import shutil
from collections import deque
from pathlib import Path
from typing import (
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    Union,
)

from ..exceptions import ParameterError
from ..obs.catalog import (
    MONITOR_THRESHOLD_CROSSINGS,
    MONITOR_WINDOW_ADVANCE_DURATION,
    MONITOR_WINDOW_ADVANCES,
    MONITOR_WINDOW_EXPIRATIONS,
    MONITOR_WINDOW_LIVE_SUBEPOCHS,
)
from ..obs.registry import Registry, registry_or_null
from ..obs.trace import span as trace_span
from ..resilience.durable import DurableSketch
from ..sketch import DistinctCountSketch
from ..sketch.estimate import TopKResult
from ..types import AddressDomain, FlowUpdate
from .threshold import CrossingEvent, diff_crossings, publish_crossings

_SLOT_PREFIX = "slot-"


class WindowEngine(Protocol):
    """Anything a :class:`WindowedThresholdWatch` can poll.

    Both :class:`SlidingWindowSketch` and
    :class:`~repro.monitor.EpochRotator` satisfy this: feed updates in,
    answer threshold queries over their current window.
    """

    def observe(self, update: FlowUpdate) -> object:
        """Feed one flow update."""

    def threshold(self, tau: int) -> TopKResult:
        """All destinations with windowed estimate ``>= tau``."""


class SlidingWindowSketch:
    """An exact sliding window over the last ``W`` updates.

    The window covers ``window_subepochs`` sub-epochs of
    ``subepoch_length`` updates each: the open sub-epoch plus the
    ``window_subepochs - 1`` most recent closed ones, i.e. between
    ``(window_subepochs - 1) * subepoch_length`` and
    ``window_subepochs * subepoch_length`` trailing updates depending
    on the position within the open sub-epoch.  Queries decode the
    running sum (slab-decoded on the packed backend), so estimates
    react to new traffic immediately and shed expired traffic within
    one sub-epoch — the detection-latency contract ``docs/windowing.md``
    derives.

    Args:
        domain: address domain.
        subepoch_length: updates per sub-epoch (the window granularity).
        window_subepochs: sub-epochs the window spans, open one included.
        seed: hash seed shared by *all* ring sketches and the running
            sum — subtraction is only exact between same-seed sketches.
        r, s: sketch shape.
        backend: sketch storage backend (``packed`` buys the slab-decode
            query path and the vectorized subtract kernel).
        obs: optional :class:`~repro.obs.Registry` for the window
            instruments (advances, expirations, live sub-epochs,
            advance-duration histogram).
        durable_dir: optional directory; when set, the open sub-epoch
            ingests through a :class:`~repro.resilience.DurableSketch`
            (WAL + checkpoint) slot under ``slot-<subepoch index>``, and
            a fresh open of the same directory rebuilds the ring and the
            running sum from the surviving slots.

    Example:
        >>> from repro.types import AddressDomain, FlowUpdate
        >>> window = SlidingWindowSketch(AddressDomain(2 ** 16),
        ...                              subepoch_length=100,
        ...                              window_subepochs=4)
        >>> for source in range(250):
        ...     window.observe(FlowUpdate(source, 7, 1))
        >>> window.top_k(1).destinations
        [7]
        >>> for position in range(450):  # spammer goes quiet...
        ...     window.observe(FlowUpdate(position % 3, 8, 1))
        >>> 7 in window.top_k(3).destinations  # ...and ages out
        False
    """

    def __init__(
        self,
        domain: AddressDomain,
        subepoch_length: int,
        window_subepochs: int = 8,
        seed: int = 0,
        r: int = 3,
        s: int = 128,
        backend: str = "packed",
        obs: Optional[Registry] = None,
        durable_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if subepoch_length < 1:
            raise ParameterError(
                f"subepoch_length must be >= 1, got {subepoch_length}"
            )
        if window_subepochs < 1:
            raise ParameterError(
                f"window_subepochs must be >= 1, got {window_subepochs}"
            )
        self.domain = domain
        self.subepoch_length = subepoch_length
        self.window_subepochs = window_subepochs
        self.seed = seed
        self.r = r
        self.s = s
        self.backend = backend
        self.durable_dir = Path(durable_dir) if durable_dir else None
        #: True when construction restored ring state from durable slots.
        self.recovered = False
        self._subepoch_index = 0
        self._updates_in_subepoch = 0
        self._updates_seen = 0
        self._ring: Deque[DistinctCountSketch] = deque()
        self._durable: Optional[DurableSketch] = None
        self.obs: Registry = registry_or_null(obs)
        self._obs_advances = self.obs.counter_from(MONITOR_WINDOW_ADVANCES)
        self._obs_expirations = self.obs.counter_from(
            MONITOR_WINDOW_EXPIRATIONS
        )
        self.obs.gauge_from(MONITOR_WINDOW_LIVE_SUBEPOCHS).watch(
            lambda: len(self._ring) + 1
        )
        # Registered eagerly so the family exports before the first
        # sampled advance span observes into it.
        self.obs.histogram_from(MONITOR_WINDOW_ADVANCE_DURATION)
        # The running window sum; per-sub-epoch sketches use the same
        # params/seed so expiry subtraction stays compatible.
        self._sum = self._new_sketch()
        if self.durable_dir is not None and self._recover():
            return
        self._current = self._open_subepoch(self._subepoch_index)

    def _new_sketch(self) -> DistinctCountSketch:
        """A blank sketch with the window's shared params and seed."""
        return DistinctCountSketch(
            self.domain,
            r=self.r,
            s=self.s,
            seed=self.seed,
            backend=self.backend,
        )

    # -- durable slots -------------------------------------------------------

    def _slot_dir(self, index: int) -> Path:
        assert self.durable_dir is not None
        return self.durable_dir / f"{_SLOT_PREFIX}{index:08d}"

    def _open_slot(self, index: int) -> DurableSketch:
        """Open (or create) the durable slot for sub-epoch ``index``."""
        return DurableSketch(
            self._slot_dir(index),
            self.domain,
            kind="basic",
            seed=self.seed,
            r=self.r,
            s=self.s,
            backend=self.backend,
        )

    def _open_subepoch(self, index: int) -> DistinctCountSketch:
        """Start sub-epoch ``index``; returns its (fresh) sketch."""
        if self.durable_dir is None:
            return self._new_sketch()
        self._durable = self._open_slot(index)
        return self._durable.sketch

    def _slot_indices(self) -> List[int]:
        """Sub-epoch indices with a slot directory on disk, sorted."""
        assert self.durable_dir is not None
        if not self.durable_dir.is_dir():
            return []
        indices: List[int] = []
        for entry in self.durable_dir.iterdir():
            name = entry.name
            if entry.is_dir() and name.startswith(_SLOT_PREFIX):
                suffix = name[len(_SLOT_PREFIX):]
                if suffix.isdigit():
                    indices.append(int(suffix))
        indices.sort()
        return indices

    def _recover(self) -> bool:
        """Rebuild ring + running sum from durable slots, if any exist.

        The newest slot on disk becomes the open sub-epoch (its
        :class:`~repro.resilience.DurableSketch` replays the WAL tail,
        so no acknowledged update is lost); older surviving slots within
        the window rejoin the ring, and the running sum is recomputed by
        merging them — linearity makes the rebuilt sum identical to the
        one that was lost.  Returns False on a fresh directory.
        """
        indices = self._slot_indices()
        if not indices:
            return False
        current_index = indices[-1]
        horizon = current_index - self.window_subepochs + 1
        for index in indices:
            if index < horizon:
                # Aged out while we were down; drop the stale slot.
                shutil.rmtree(self._slot_dir(index))
                continue
            if index == current_index:
                continue
            closed = self._open_slot(index)
            closed.close()
            self._ring.append(closed.sketch)
            self._sum.merge(closed.sketch)
        self._subepoch_index = current_index
        self._durable = self._open_slot(current_index)
        self._current = self._durable.sketch
        self._sum.merge(self._current)
        self._updates_in_subepoch = self._current.updates_processed
        self._updates_seen = self._sum.updates_processed
        self.recovered = True
        if self._updates_in_subepoch >= self.subepoch_length:
            # Crashed on the boundary itself: finish the advance now.
            self._updates_in_subepoch = 0
            self._advance()
        return True

    # -- ingestion -----------------------------------------------------------

    def observe(self, update: FlowUpdate) -> None:
        """Feed one update to the open sub-epoch and the running sum."""
        if self._durable is not None:
            self._durable.process(update)
        else:
            self._current.process(update)
        self._sum.process(update)
        self._updates_seen += 1
        self._updates_in_subepoch += 1
        if self._updates_in_subepoch >= self.subepoch_length:
            self._updates_in_subepoch = 0
            self._advance()

    def observe_batch(self, updates: Iterable[FlowUpdate]) -> int:
        """Feed a batch, splitting it at sub-epoch boundaries.

        Whole-sub-epoch chunks ride the batched ingestion path of both
        the open sketch and the running sum.  Returns the update count.
        """
        pending = list(updates)
        total = len(pending)
        start = 0
        while start < total:
            room = self.subepoch_length - self._updates_in_subepoch
            chunk = pending[start:start + room]
            start += len(chunk)
            if self._durable is not None:
                self._durable.update_batch(chunk)
            else:
                self._current.update_batch(chunk)
            self._sum.update_batch(chunk)
            self._updates_seen += len(chunk)
            self._updates_in_subepoch += len(chunk)
            if self._updates_in_subepoch >= self.subepoch_length:
                self._updates_in_subepoch = 0
                self._advance()
        return total

    def observe_stream(self, updates: Iterable[FlowUpdate]) -> int:
        """Feed a whole stream; returns the update count."""
        count = 0
        for update in updates:
            self.observe(update)
            count += 1
        return count

    def _advance(self) -> None:
        """Close the open sub-epoch; expire anything past the horizon."""
        with trace_span(
            "monitor.window_advance", metric=MONITOR_WINDOW_ADVANCE_DURATION
        ):
            if self._durable is not None:
                self._durable.checkpoint()
                self._durable.close()
                self._durable = None
            self._ring.append(self._current)
            while len(self._ring) > self.window_subepochs - 1:
                expired = self._ring.popleft()
                # The −1-multiplicity merge: the sum becomes the exact
                # sketch of the surviving in-window updates.
                self._sum.subtract(expired)
                self._obs_expirations.inc()
                if self.durable_dir is not None:
                    expired_index = (
                        self._subepoch_index - self.window_subepochs + 1
                    )
                    expired_dir = self._slot_dir(expired_index)
                    if expired_dir.is_dir():
                        shutil.rmtree(expired_dir)
            self._subepoch_index += 1
            self._current = self._open_subepoch(self._subepoch_index)
            self._obs_advances.inc()

    # -- queries -------------------------------------------------------------

    @property
    def window_sum(self) -> DistinctCountSketch:
        """The running sum: exactly the sketch of the in-window updates."""
        return self._sum

    def top_k(self, k: int) -> TopKResult:
        """Top-k destinations over the current window (BaseTopk)."""
        return self._sum.base_topk(k)

    def threshold(self, tau: int) -> TopKResult:
        """All destinations with windowed estimate ``>= tau``."""
        return self._sum.threshold_query(tau)

    @property
    def updates_seen(self) -> int:
        """Total updates fed since construction (or recovery point)."""
        return self._updates_seen

    @property
    def in_window_updates(self) -> int:
        """Updates currently inside the window (sum's net bookkeeping)."""
        return self._sum.updates_processed

    @property
    def subepoch_index(self) -> int:
        """Index of the open sub-epoch (0-based)."""
        return self._subepoch_index

    @property
    def live_subepochs(self) -> int:
        """Ring occupancy including the open sub-epoch."""
        return len(self._ring) + 1

    def space_bytes(self) -> int:
        """Combined model space: ring + open sub-epoch + running sum."""
        total = self._sum.space_bytes() + self._current.space_bytes()
        for sketch in self._ring:
            total += sketch.space_bytes()
        return total

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Checkpoint and release the open durable slot, if any."""
        if self._durable is not None:
            self._durable.checkpoint()
            self._durable.close()
            self._durable = None

    def __enter__(self) -> "SlidingWindowSketch":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SlidingWindowSketch(subepoch={self._subepoch_index}, "
            f"live={self.live_subepochs}, "
            f"subepoch_length={self.subepoch_length}, "
            f"window_subepochs={self.window_subepochs})"
        )


class WindowedThresholdWatch:
    """Crossing detection over any windowed engine.

    The windowed counterpart of :class:`ThresholdWatch`: instead of one
    ever-growing tracking sketch it polls a window *engine* — a
    :class:`SlidingWindowSketch` (exact window at sub-epoch granularity)
    or an :class:`~repro.monitor.EpochRotator` (epoch granularity) —
    so a burst is flagged while it is inside the window and the alarm
    clears once it ages out, regardless of where the burst falls
    relative to sub-epoch boundaries.  Both engines share the crossing
    semantics, metrics, and flight-recorder records of
    :class:`ThresholdWatch`, which is what lets
    ``benchmarks/bench_window_latency.py`` compare their detection
    latency like for like.

    Args:
        engine: the windowed engine to feed and poll.
        tau: the frequency threshold.
        check_interval: poll the engine every this many updates.
        obs: optional :class:`~repro.obs.Registry`; crossings export as
            ``repro_monitor_threshold_crossings_total{direction=...}``.
    """

    def __init__(
        self,
        engine: WindowEngine,
        tau: int,
        check_interval: int = 1000,
        obs: Optional[Registry] = None,
    ) -> None:
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        if check_interval < 1:
            raise ParameterError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        self.engine = engine
        self.tau = tau
        self.check_interval = check_interval
        self._updates_seen = 0
        self._currently_above: Set[int] = set()
        self._events: List[CrossingEvent] = []
        self.obs: Registry = registry_or_null(obs)
        crossings = self.obs.counter_from(MONITOR_THRESHOLD_CROSSINGS)
        self._obs_cross_up = crossings.labels(direction="up")
        self._obs_cross_down = crossings.labels(direction="down")

    def observe(self, update: FlowUpdate) -> List[CrossingEvent]:
        """Feed one update; returns crossing events from a due poll."""
        self.engine.observe(update)
        self._updates_seen += 1
        if self._updates_seen % self.check_interval == 0:
            return self.poll()
        return []

    def observe_stream(
        self, updates: Iterable[FlowUpdate]
    ) -> List[CrossingEvent]:
        """Feed a whole stream; returns all crossing events raised."""
        raised: List[CrossingEvent] = []
        for update in updates:
            raised.extend(self.observe(update))
        return raised

    def poll(self) -> List[CrossingEvent]:
        """Query the engine now and emit crossing events."""
        result = self.engine.threshold(self.tau)
        now_above: Dict[int, int] = result.as_dict()
        events = diff_crossings(
            now_above, self._currently_above, self._updates_seen
        )
        self._currently_above = set(now_above)
        self._events.extend(events)
        publish_crossings(events, self._obs_cross_up, self._obs_cross_down)
        return events

    def above_threshold(self) -> List[Tuple[int, int]]:
        """Current ``(dest, estimate)`` list over the threshold."""
        return [
            (entry.dest, entry.estimate)
            for entry in self.engine.threshold(self.tau)
        ]

    @property
    def events(self) -> List[CrossingEvent]:
        """All crossing events observed so far."""
        return list(self._events)

    @property
    def updates_seen(self) -> int:
        """Number of flow updates processed so far."""
        return self._updates_seen

    def __repr__(self) -> str:
        return (
            f"WindowedThresholdWatch(tau={self.tau}, "
            f"updates={self._updates_seen}, "
            f"above={len(self._currently_above)})"
        )
