"""The DDoS MONITOR facade (Figure 1).

Ties together the tracking sketch, the baseline profile, and alarm
generation.  Operationally:

1. every incoming flow update is fed to the Tracking-DCS (O(r log^2 m));
2. every ``check_interval`` updates, the monitor runs ``TrackTopk``
   (O(k log m)) and scores each reported destination against its
   baseline profile;
3. destinations whose estimated half-open distinct-source frequency is
   ``warning_ratio`` (resp. ``critical_ratio``) times their baseline —
   and above an absolute floor — raise alarms.

Because the sketch *deletes* legitimised flows, a flash crowd of
handshake-completing clients never accumulates frequency and never
alarms; a spoofed SYN flood does.  That discrimination is the paper's
robustness claim and is covered by integration tests and bench E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..exceptions import ParameterError
from ..obs.catalog import (
    MONITOR_ALARMS,
    MONITOR_CHECK_ALARMS,
    MONITOR_CHECKS,
    MONITOR_UPDATES,
)
from ..obs.registry import Registry, registry_or_null
from ..sketch import TrackingDistinctCountSketch
from ..sketch.estimate import TopKResult
from ..types import AddressDomain, FlowUpdate
from .alarms import Alarm, AlarmSeverity, AlarmSink
from .profile import ActivityProfile
from .window import SlidingWindowSketch


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables of the monitor.

    Attributes:
        k: how many top destinations each poll inspects.
        check_interval: run a tracking query every this many updates.
        warning_ratio: estimate/baseline ratio raising a WARNING.
        critical_ratio: estimate/baseline ratio raising a CRITICAL.
        absolute_floor: ignore destinations whose estimate is below
            this, however anomalous relative to baseline (tiny servers
            crossing a tiny baseline are not DDoS victims).
    """

    k: int = 10
    check_interval: int = 1000
    warning_ratio: float = 10.0
    critical_ratio: float = 50.0
    absolute_floor: int = 100

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        if self.check_interval < 1:
            raise ParameterError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )
        if self.warning_ratio <= 1.0:
            raise ParameterError(
                f"warning_ratio must exceed 1, got {self.warning_ratio}"
            )
        if self.critical_ratio < self.warning_ratio:
            raise ParameterError(
                "critical_ratio must be >= warning_ratio"
            )
        if self.absolute_floor < 0:
            raise ParameterError("absolute_floor must be >= 0")


class DDoSMonitor:
    """Real-time detector of top distinct-source frequency destinations.

    Args:
        domain: address domain of the monitored network.
        config: monitor tunables (defaults are sensible for tests).
        profile: baseline activity profile; a fresh all-default profile
            is used if omitted.
        seed: sketch seed.
        r, s: sketch shape (Section 6.1 defaults).
        obs: optional :class:`~repro.obs.Registry`, shared with the
            inner tracking sketch — one registry then exports the whole
            ingest/detect pipeline (see ``docs/observability.md``).
        backend: storage backend of the inner sketch — ``"reference"``
            or ``"packed"``; pick ``"packed"`` when feeding through
            :meth:`observe_batch` so ingestion and the check-interval
            queries both ride the vectorized engine
            (``docs/performance.md``).
        window: optional :class:`SlidingWindowSketch`.  When set, every
            update also feeds the window and detection passes score the
            *windowed* top-k instead of the all-time one, so alarms
            follow the last ``window_subepochs`` sub-epochs of traffic
            and clear when an attack ages out (``docs/windowing.md``).
            The all-time tracking sketch keeps running for baselines
            and forensics.

    Example:
        >>> from repro.types import AddressDomain
        >>> monitor = DDoSMonitor(AddressDomain(2 ** 32), seed=3)
        >>> alarms = monitor.observe_stream(
        ...     FlowUpdate(source, 42, 1) for source in range(500))
        >>> monitor.current_top()[0].dest
        42
    """

    def __init__(
        self,
        domain: AddressDomain,
        config: Optional[MonitorConfig] = None,
        profile: Optional[ActivityProfile] = None,
        seed: int = 0,
        r: int = 3,
        s: int = 128,
        obs: Optional[Registry] = None,
        backend: str = "reference",
        window: Optional[SlidingWindowSketch] = None,
    ) -> None:
        self.config = config or MonitorConfig()
        self.profile = profile or ActivityProfile()
        self.sketch = TrackingDistinctCountSketch(
            domain, r=r, s=s, seed=seed, obs=obs, backend=backend
        )
        self.window = window
        self.alarms = AlarmSink()
        self._updates_seen = 0
        self.obs: Registry = registry_or_null(obs)
        self._obs_updates = self.obs.counter_from(MONITOR_UPDATES)
        self._obs_checks = self.obs.counter_from(MONITOR_CHECKS)
        alarms = self.obs.counter_from(MONITOR_ALARMS)
        self._obs_alarms_warning = alarms.labels(severity="warning")
        self._obs_alarms_critical = alarms.labels(severity="critical")
        self._obs_check_alarms = self.obs.histogram_from(MONITOR_CHECK_ALARMS)

    # -- stream ingestion -------------------------------------------------------

    def observe(self, update: FlowUpdate) -> List[Alarm]:
        """Feed one flow update; returns any alarms this update triggered."""
        self.sketch.process(update)
        if self.window is not None:
            self.window.observe(update)
        self._updates_seen += 1
        self._obs_updates.inc()
        if self._updates_seen % self.config.check_interval == 0:
            return self.check_now()
        return []

    def observe_stream(self, updates: Iterable[FlowUpdate]) -> List[Alarm]:
        """Feed a whole stream; returns all alarms raised along the way."""
        raised: List[Alarm] = []
        for update in updates:
            raised.extend(self.observe(update))
        return raised

    def observe_batch(self, updates: Iterable[FlowUpdate]) -> List[Alarm]:
        """Feed a batch through the vectorized engine; returns alarms.

        Equivalent to calling :meth:`observe` per update — detection
        passes fire at exactly the same stream positions (every
        ``check_interval`` updates), and the sketch state is
        bit-identical because ``update_batch`` is — but ingestion rides
        :meth:`~repro.sketch.dcs.DistinctCountSketch.update_batch`, so
        with ``backend="packed"`` both the counter scatter and each
        check's query run vectorized.  Splits the batch at
        check-interval boundaries so no detection pass is skipped or
        displaced.
        """
        pending = list(updates)
        raised: List[Alarm] = []
        interval = self.config.check_interval
        start = 0
        count = len(pending)
        while start < count:
            room = interval - self._updates_seen % interval
            chunk = pending[start:start + room]
            applied = self.sketch.update_batch(chunk)
            if self.window is not None:
                self.window.observe_batch(chunk)
            self._updates_seen += applied
            self._obs_updates.inc(applied)
            start += len(chunk)
            if self._updates_seen % interval == 0:
                raised.extend(self.check_now())
        return raised

    # -- detection ---------------------------------------------------------------

    def current_top(self) -> TopKResult:
        """The current approximate top-k (does not run alarm checks).

        With a :class:`SlidingWindowSketch` attached this is the
        *windowed* top-k; otherwise the all-time tracked top-k.
        """
        if self.window is not None:
            return self.window.top_k(self.config.k)
        return self.sketch.track_topk(self.config.k)

    def check_now(self) -> List[Alarm]:
        """Run one detection pass immediately; returns accepted alarms."""
        self._obs_checks.inc()
        result = self.current_top()
        accepted: List[Alarm] = []
        for entry in result:
            if entry.estimate < self.config.absolute_floor:
                continue
            baseline = self.profile.baseline(entry.dest)
            ratio = self.profile.anomaly_score(entry.dest, entry.estimate)
            if ratio >= self.config.critical_ratio:
                severity = AlarmSeverity.CRITICAL
            elif ratio >= self.config.warning_ratio:
                severity = AlarmSeverity.WARNING
            else:
                continue
            alarm = Alarm(
                dest=entry.dest,
                estimated_frequency=entry.estimate,
                baseline_frequency=baseline,
                severity=severity,
                updates_seen=self._updates_seen,
            )
            if self.alarms.offer(alarm):
                accepted.append(alarm)
                if severity is AlarmSeverity.CRITICAL:
                    self._obs_alarms_critical.inc()
                else:
                    self._obs_alarms_warning.inc()
        self._obs_check_alarms.observe(len(accepted))
        return accepted

    # -- profiling ---------------------------------------------------------------

    def learn_baseline(self) -> None:
        """Fold the sketch's current top-k view into the baseline profile.

        Call this during known-clean periods ("longer periods of time",
        Section 2) so that habitual heavy hitters — busy mail servers,
        popular sites — stop looking anomalous.  Always reads the
        all-time tracking sketch: baselines describe long-run behaviour,
        which a sliding window by design forgets.
        """
        snapshot = {
            entry.dest: entry.estimate
            for entry in self.sketch.track_topk(self.config.k)
        }
        self.profile.learn(snapshot)

    @property
    def updates_seen(self) -> int:
        """Number of flow updates processed so far."""
        return self._updates_seen

    def __repr__(self) -> str:
        return (
            f"DDoSMonitor(updates={self._updates_seen}, "
            f"alarms={len(self.alarms)})"
        )
