#!/usr/bin/env python3
"""Quickstart: track top-k distinct-source frequencies over a stream.

Builds a Tracking Distinct-Count Sketch, feeds it a small update stream
with insertions *and* deletions, and queries the top destinations —
the 60-second tour of the library's core API.

Run:  python examples/quickstart.py
"""

from repro import AddressDomain, FlowUpdate, TrackingDistinctCountSketch


def main() -> None:
    # All addresses live in an integer domain [0, m); use the full IPv4
    # space.  The sketch size depends only logarithmically on m.
    domain = AddressDomain(2 ** 32)
    sketch = TrackingDistinctCountSketch(domain, r=3, s=128, seed=42)

    # --- a destination under SYN flood: many distinct spoofed sources,
    #     none of which ever completes the handshake.
    victim = 0xC6336414  # 198.51.100.20
    for source in range(5000):
        sketch.insert(source=0x0A000000 + source, dest=victim)

    # --- a popular but healthy destination: many distinct sources, but
    #     every handshake completes, so each insert is later deleted.
    popular = 0xC6336415  # 198.51.100.21
    for source in range(5000):
        sketch.insert(source=0x14000000 + source, dest=popular)
    for source in range(5000):
        sketch.delete(source=0x14000000 + source, dest=popular)

    # --- background noise: a few sources each to many destinations.
    for dest_offset in range(200):
        for source in range(10):
            sketch.insert(
                source=0x1E000000 + dest_offset * 64 + source,
                dest=0xC0A80000 + dest_offset,
            )

    # Continuous tracking query: O(k log m), does not touch the stream.
    result = sketch.track_topk(k=5)
    print(f"distinct sample size: {result.sample_size} "
          f"(stop level {result.stop_level})")
    print("top-5 destinations by estimated half-open distinct sources:")
    for rank, entry in enumerate(result, start=1):
        marker = "  <-- the flood victim" if entry.dest == victim else ""
        print(f"  {rank}. dest=0x{entry.dest:08X}  "
              f"estimate={entry.estimate}{marker}")

    # The healthy destination's frequency collapsed to ~0 because the
    # sketch really deletes; it does not appear near the top.
    assert result.destinations[0] == victim
    assert popular not in result.destinations
    print("\nflood victim ranked #1; handshake-completing destination "
          "absent — deletions work.")

    # The same stream can also be queried via a FlowUpdate interface:
    sketch.process(FlowUpdate(source=1, dest=2, delta=+1))
    print(f"\nsketch: {sketch}")
    print(f"model space: {sketch.space_bytes() / 1024:.0f} KiB")


if __name__ == "__main__":
    main()
