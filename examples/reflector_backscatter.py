#!/usr/bin/env python3
"""Reflector (backscatter) attack detection via the role swap.

Paxson-style reflector attacks (the paper's reference [29]) invert the
usual picture: zombies forge the *victim's* address as the source of
SYNs sent to thousands of innocent servers, which then swamp the victim
with SYN-ACK backscatter.  No single destination looks attacked — every
reflector sees one half-open flow — so the standard per-destination
monitor is blind.  The victim, however, appears to hold half-open state
toward an enormous number of distinct destinations, which is exactly
what the footnote-1 role swap (the port-scan detector) tracks.

Run:  python examples/reflector_backscatter.py
"""

from repro import AddressDomain
from repro.monitor import DDoSMonitor, PortScanDetector
from repro.netsim import (
    BackgroundTraffic,
    FlowExporter,
    ReflectorAttack,
    Scenario,
    format_ip,
    parse_ip,
)


def main() -> None:
    domain = AddressDomain(2 ** 32)
    victim = parse_ip("192.0.2.80")
    servers = [parse_ip(f"198.51.100.{i}") for i in range(1, 100)]

    scenario = Scenario(
        ReflectorAttack(victim, reflectors=3000, rst_fraction=0.2,
                        seed=1),
        BackgroundTraffic(servers, sessions=3000, seed=2),
    )
    updates = FlowExporter().export_all(scenario.packets())
    print(f"{len(updates)} flow updates observed")

    # ---- the per-destination monitor sees nothing ----------------------
    forward_monitor = DDoSMonitor(domain, seed=3)
    alarms = forward_monitor.observe_stream(updates)
    top_dest = forward_monitor.current_top()
    print("\nper-destination view (standard monitor):")
    print(f"  alarms: {len(alarms)}")
    if top_dest.entries:
        print(f"  busiest destination: "
              f"{format_ip(top_dest.entries[0].dest)} "
              f"~{top_dest.entries[0].estimate} half-open sources")
    assert not alarms, "no single destination should look attacked"

    # ---- the role-swapped view names the victim ------------------------
    detector = PortScanDetector(domain, seed=4)
    detector.observe_stream(updates)
    top_sources = detector.top_scanners(3)
    print("\nper-source view (role swap):")
    for rank, entry in enumerate(top_sources, start=1):
        marker = "  <-- the reflector-attack victim" \
            if entry.dest == victim else ""
        print(f"  {rank}. {format_ip(entry.dest):16s} "
              f"~{entry.estimate} distinct half-open peers{marker}")
    assert top_sources.destinations[0] == victim
    print("\nbackscatter victim identified from the same update stream.")


if __name__ == "__main__":
    main()
