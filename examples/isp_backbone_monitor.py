#!/usr/bin/env python3
"""ISP-backbone monitoring: multiple routers, one merged synopsis.

Figure 1 of the paper shows the DDoS monitor consuming update streams
from many network elements.  Because the Distinct-Count Sketch is a
*linear* synopsis, each edge router can maintain its own sketch locally
and ship it to the monitor, which merges them — producing exactly the
sketch it would have built from the interleaved streams.  This example
demonstrates that equivalence on a 4-router topology with an ongoing
attack.

Run:  python examples/isp_backbone_monitor.py
"""

from repro import AddressDomain, TrackingDistinctCountSketch
from repro.netsim import (
    BackgroundTraffic,
    IspNetwork,
    Scenario,
    SynFloodAttack,
    format_ip,
    parse_ip,
)


def main() -> None:
    domain = AddressDomain(2 ** 32)
    victim = parse_ip("203.0.113.77")
    servers = [parse_ip(f"203.0.113.{i}") for i in range(1, 120)]

    scenario = Scenario(
        SynFloodAttack(victim, flood_size=6000, seed=1),
        BackgroundTraffic(servers, sessions=6000, seed=2),
    )
    network = IspNetwork(["pop-nyc", "pop-chi", "pop-dfw", "pop-sfo"],
                         seed=5)
    network.carry(scenario.packets())

    # ---- per-router sketches, merged at the monitor -------------------
    seed = 11
    router_sketches = {}
    for name, updates in network.update_streams().items():
        sketch = TrackingDistinctCountSketch(domain, seed=seed)
        sketch.process_stream(updates)
        router_sketches[name] = sketch
        print(f"{name}: {len(updates):6d} updates, "
              f"local top-1 = "
              f"{format_ip(sketch.track_topk(1).destinations[0])}")

    merged = TrackingDistinctCountSketch(domain, seed=seed)
    for sketch in router_sketches.values():
        merged.merge(sketch)

    # ---- the centralized alternative -----------------------------------
    central = TrackingDistinctCountSketch(domain, seed=seed)
    central.process_stream(network.merged_updates())

    assert merged.structurally_equal(central), \
        "merged per-router sketches must equal the centralized sketch"
    print("\nmerged per-router sketches == centralized sketch (linearity)")

    top = merged.track_topk(3)
    print("network-wide top-3 suspected victims:")
    for rank, entry in enumerate(top, start=1):
        marker = "  <-- under attack" if entry.dest == victim else ""
        print(f"  {rank}. {format_ip(entry.dest):16s} "
              f"~{entry.estimate} half-open distinct sources{marker}")
    assert top.destinations[0] == victim


if __name__ == "__main__":
    main()
