#!/usr/bin/env python3
"""Flash crowd vs DDoS attack: the discrimination volume counters miss.

The paper's central robustness argument (Section 1): volume-based
detectors "make it impossible to distinguish between DDoS attacks and
flash crowds".  This example runs *identically sized* surges — one a
spoofed SYN flood, one a legitimate flash crowd — and compares:

* a naive volume counter (SYNs per destination), which flags both; and
* the deletion-aware Tracking-DCS, which flags only the attack, because
  every flash-crowd handshake completes and its insertion is deleted.

Run:  python examples/flash_crowd_vs_attack.py
"""

from collections import Counter

from repro import AddressDomain, TrackingDistinctCountSketch
from repro.netsim import (
    FlashCrowd,
    FlowExporter,
    PacketKind,
    Scenario,
    SynFloodAttack,
    format_ip,
    parse_ip,
)


def main() -> None:
    domain = AddressDomain(2 ** 32)
    attack_victim = parse_ip("198.51.100.10")
    crowd_dest = parse_ip("198.51.100.20")
    surge = 6000  # same magnitude for both events

    scenario = Scenario(
        SynFloodAttack(attack_victim, flood_size=surge, seed=1),
        FlashCrowd(crowd_dest, crowd_size=surge, seed=2),
    )
    packets = scenario.packets()

    # ---- naive volume counter: SYN packets per destination -----------
    syn_volume = Counter(
        packet.dest for packet in packets if packet.kind is PacketKind.SYN
    )
    print("SYN volume per destination (what a volume detector sees):")
    for dest, count in syn_volume.most_common():
        print(f"  {format_ip(dest):16s} {count:6d} SYNs")
    print("  -> indistinguishable: both look like attacks.\n")

    # ---- deletion-aware sketch ----------------------------------------
    sketch = TrackingDistinctCountSketch(domain, seed=3)
    updates = FlowExporter().export_all(packets)
    sketch.process_stream(updates)

    result = sketch.track_topk(k=2)
    estimates = result.as_dict()
    print("tracked half-open distinct-source frequencies (the sketch):")
    for dest in (attack_victim, crowd_dest):
        estimate = estimates.get(dest, 0)
        label = "ATTACK " if estimate > surge / 10 else "healthy"
        print(f"  {format_ip(dest):16s} ~{estimate:6d} half-open  [{label}]")

    assert estimates.get(attack_victim, 0) > surge / 2
    assert estimates.get(crowd_dest, 0) < surge / 10
    print("\nthe sketch separates them: spoofed sources never ACK, so "
          "only the attack accumulates half-open flows.")


if __name__ == "__main__":
    main()
