#!/usr/bin/env python3
"""Threshold tracking: alert when any destination crosses f_v >= tau.

The Section 2 footnote-3 variant of the tracking problem: instead of a
top-k query, watch for *any* destination whose distinct-source frequency
clears a fixed threshold.  This example shows the full lifecycle: an
attack pushes the victim over the threshold (upward crossing event), the
attack ends and the operator's mitigation resets the half-open flows
(deletions), and the victim drops back below (downward crossing event).

Run:  python examples/threshold_tracking.py
"""

from repro import AddressDomain, FlowUpdate
from repro.monitor import ThresholdWatch
from repro.netsim import format_ip, parse_ip


def main() -> None:
    domain = AddressDomain(2 ** 32)
    victim = parse_ip("192.0.2.50")
    watch = ThresholdWatch(domain, tau=500, check_interval=250, seed=3)

    # ---- attack ramps up ------------------------------------------------
    attack_sources = [0x30000000 + i for i in range(3000)]
    events = []
    for source in attack_sources:
        events.extend(watch.observe(FlowUpdate(source, victim, +1)))
    for event in events:
        direction = "ABOVE" if event.above else "below"
        print(f"update {event.updates_seen}: {format_ip(event.dest)} "
              f"crossed {direction} tau (estimate ~{event.estimate})")
    assert any(e.above and e.dest == victim for e in events), \
        "the ramp-up must raise an upward crossing"

    # ---- mitigation: the half-open flows are torn down ------------------
    # (e.g. a SYN-proxy validates or expires them -> deletions)
    events = []
    for source in attack_sources:
        events.extend(watch.observe(FlowUpdate(source, victim, -1)))
    for event in events:
        direction = "ABOVE" if event.above else "below"
        print(f"update {event.updates_seen}: {format_ip(event.dest)} "
              f"crossed {direction} tau")
    assert any((not e.above) and e.dest == victim for e in events), \
        "teardown must raise a downward crossing"

    print(f"\ncurrently above tau: {watch.above_threshold()} (expected [])")
    assert watch.above_threshold() == []
    print("threshold watch tracked the full attack lifecycle.")


if __name__ == "__main__":
    main()
