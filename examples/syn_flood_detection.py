#!/usr/bin/env python3
"""SYN-flood detection: the paper's motivating scenario, end to end.

Simulates an ISP edge carrying normal traffic, trains a baseline
profile, then launches a distributed SYN flood with spoofed sources
against one server and shows the DDoS monitor raising alarms on the
victim — in real time, from a synopsis a fraction of the size of the
flow table.

Run:  python examples/syn_flood_detection.py
"""

from repro import AddressDomain
from repro.monitor import DDoSMonitor, MonitorConfig
from repro.netsim import (
    BackgroundTraffic,
    FlowExporter,
    Scenario,
    SynFloodAttack,
    format_ip,
    parse_ip,
)


def main() -> None:
    domain = AddressDomain(2 ** 32)
    victim = parse_ip("198.51.100.10")
    servers = [parse_ip(f"198.51.100.{i}") for i in range(10, 60)]

    monitor = DDoSMonitor(
        domain,
        MonitorConfig(k=10, check_interval=500,
                      warning_ratio=10, critical_ratio=50,
                      absolute_floor=100),
        seed=7,
    )

    # ---- phase 1: a clean hour of traffic; learn the baseline --------
    clean = Scenario(
        BackgroundTraffic(servers, sessions=5000, duration=3600,
                          abandon_fraction=0.02, seed=1),
    )
    exporter = FlowExporter()
    clean_updates = exporter.export_all(clean.packets())
    alarms = monitor.observe_stream(clean_updates)
    monitor.learn_baseline()
    print(f"clean period: {len(clean_updates)} updates, "
          f"{len(alarms)} alarms (expected 0)")

    # ---- phase 2: the attack ------------------------------------------
    # 8000 spoofed SYNs over 60 seconds; sources are random addresses
    # from the whole IPv4 space, so no ACK ever arrives and every flow
    # stays half-open.
    attack = Scenario(
        SynFloodAttack(victim, flood_size=8000, start=3600,
                       duration=60, seed=2),
        BackgroundTraffic(servers, sessions=2000, start=3600,
                          duration=60, seed=3),
    )
    attack_updates = FlowExporter().export_all(attack.packets())
    alarms = monitor.observe_stream(attack_updates)

    print(f"attack period: {len(attack_updates)} updates, "
          f"{len(alarms)} alarms")
    for alarm in alarms:
        print(f"  ALARM [{alarm.severity.value}] "
              f"dest={format_ip(alarm.dest)} "
              f"~{alarm.estimated_frequency} half-open distinct sources "
              f"({alarm.excess_ratio:.0f}x baseline)")

    assert any(alarm.dest == victim for alarm in alarms), \
        "the victim should have been detected"
    print(f"\nvictim {format_ip(victim)} detected.")
    # The sketch's footprint is (poly)logarithmic in the network size:
    # it stays ~1-5 MB whether the stream has 10^4 or 10^9 distinct
    # pairs, while per-pair state grows linearly (96 MB at the paper's
    # U = 8e6, >12 GB at U = 2^30 — see `repro-ddos space`).
    print(f"sketch space: {monitor.sketch.space_bytes() / 1024:.0f} KiB, "
          f"independent of how large the attack grows")


if __name__ == "__main__":
    main()
