#!/usr/bin/env python3
"""Distributed monitoring with serialized sketches and trace files.

A realistic deployment of the Figure 1 architecture:

1. each edge router exports its flow updates to a *trace file* (the
   NetFlow-style archive) and maintains a local tracking sketch;
2. routers periodically *serialize* their sketches and ship the bytes
   to the central monitor;
3. the monitor deserializes and merges them — obtaining, exactly, the
   sketch of the whole network's traffic — and runs the top-k query.

Run:  python examples/distributed_monitor.py
"""

import tempfile
from pathlib import Path

from repro import AddressDomain, TrackingDistinctCountSketch
from repro.netsim import (
    BackgroundTraffic,
    IspNetwork,
    Scenario,
    SynFloodAttack,
    format_ip,
    parse_ip,
)
from repro.sketch import serialize
from repro.streams import read_trace, write_trace


def main() -> None:
    domain = AddressDomain(2 ** 32)
    victim = parse_ip("203.0.113.99")
    servers = [parse_ip(f"203.0.113.{i}") for i in range(1, 120)]
    shared_seed = 33  # all sites must agree on the sketch seed

    # ---- traffic hits four points of presence -------------------------
    scenario = Scenario(
        SynFloodAttack(victim, flood_size=5000, seed=1),
        BackgroundTraffic(servers, sessions=5000, seed=2),
    )
    network = IspNetwork(["nyc", "chi", "dfw", "sfo"], seed=3)
    network.carry(scenario.packets())

    workdir = Path(tempfile.mkdtemp(prefix="repro-distributed-"))
    payloads = {}
    for name, updates in network.update_streams().items():
        # (1) archive the raw updates as a trace file...
        trace_path = workdir / f"{name}.trace"
        write_trace(trace_path, updates, header=f"router {name}")
        # (2) ...build the local sketch from the archived trace
        #     (proving the trace round-trip loses nothing)...
        sketch = TrackingDistinctCountSketch(domain, seed=shared_seed)
        sketch.process_stream(read_trace(trace_path))
        # (3) ...and ship the serialized synopsis, not the trace:
        payloads[name] = serialize.dumps(sketch)
        print(f"{name}: {len(updates):6d} updates archived, "
              f"sketch shipped as {len(payloads[name]) / 1024:.0f} KiB "
              f"(trace was {trace_path.stat().st_size / 1024:.0f} KiB)")

    # ---- the central monitor merges the shipped sketches --------------
    monitor_sketch = TrackingDistinctCountSketch(domain, seed=shared_seed)
    for name, payload in payloads.items():
        monitor_sketch.merge(serialize.loads(payload))

    top = monitor_sketch.track_topk(3)
    print("\nnetwork-wide top-3 from merged sketches:")
    for rank, entry in enumerate(top, start=1):
        marker = "  <-- under attack" if entry.dest == victim else ""
        print(f"  {rank}. {format_ip(entry.dest):16s} "
              f"~{entry.estimate}{marker}")
    assert top.destinations[0] == victim

    # Sanity: merging shipped sketches equals processing everything
    # centrally (the linearity guarantee, across serialization).
    central = TrackingDistinctCountSketch(domain, seed=shared_seed)
    central.process_stream(network.merged_updates())
    assert monitor_sketch.structurally_equal(central)
    print("\nmerged shipped sketches == centrally-built sketch; "
          f"artifacts in {workdir}")


if __name__ == "__main__":
    main()
