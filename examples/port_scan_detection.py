#!/usr/bin/env python3
"""Port-scan / worm detection: the paper's footnote-1 application.

"Our top-k distinct frequencies tracking algorithms can also be used to
identify hosts that contact many distinct destinations during port
scans (mostly for worm propagation)."  The same sketch, with the pair
roles swapped, tracks top-k *sources* by distinct contacted
destinations — catching a scanning worm among busy-but-legitimate
clients.

Run:  python examples/port_scan_detection.py
"""

import random

from repro import AddressDomain
from repro.monitor import PortScanDetector
from repro.netsim import format_ip, parse_ip


def main() -> None:
    domain = AddressDomain(2 ** 32)
    detector = PortScanDetector(domain, seed=21)
    rng = random.Random(7)

    worm_host = parse_ip("10.66.6.66")
    proxy_host = parse_ip("10.1.1.1")  # busy but legitimate
    servers = [parse_ip("198.51.100.1") + i for i in range(4000)]

    # --- a worm probing thousands of addresses sequentially ----------
    for dest in servers[:3000]:
        detector.record_contact(source=worm_host, dest=dest)

    # --- a corporate proxy talking to many services, but each exchange
    #     completes and is discounted (the deletion convention).
    proxy_dests = rng.sample(servers, 2000)
    for dest in proxy_dests:
        detector.record_contact(source=proxy_host, dest=dest)
    for dest in proxy_dests:
        detector.discount_contact(source=proxy_host, dest=dest)

    # --- normal clients: a handful of destinations each ---------------
    for client in range(500):
        source = parse_ip("10.2.0.0") + client
        for dest in rng.sample(servers, 6):
            detector.record_contact(source=source, dest=dest)

    top = detector.top_scanners(3)
    print("top suspected scanners (by ~distinct destinations contacted):")
    for rank, entry in enumerate(top, start=1):
        marker = ""
        if entry.dest == worm_host:
            marker = "  <-- the worm"
        elif entry.dest == proxy_host:
            marker = "  <-- the proxy (should NOT be here)"
        print(f"  {rank}. {format_ip(entry.dest):16s} "
              f"~{entry.estimate}{marker}")

    assert top.destinations[0] == worm_host
    assert proxy_host not in top.destinations
    print("\nworm identified; the discounted proxy never surfaces.")

    threshold = 500
    flagged = detector.scanners_above(threshold)
    print(f"sources above {threshold} distinct destinations: "
          f"{[(format_ip(s), est) for s, est in flagged]}")


if __name__ == "__main__":
    main()
