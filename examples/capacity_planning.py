#!/usr/bin/env python3
"""Capacity planning: sizing a sketch before deployment.

Walks the analysis package: the operator knows roughly how many
distinct active pairs the network carries (U), the smallest
distinct-source frequency worth alarming on (f_vk), and the accuracy
target — and wants a sketch shape plus predicted space, *before*
deploying.  Two flavors are compared: the paper's Theorem 4.4 (huge but
provable) and the empirically calibrated plan; the calibrated plan is
then validated against a live workload.

Run:  python examples/capacity_planning.py
"""

from repro import AddressDomain, TrackingDistinctCountSketch
from repro.analysis import plan_capacity
from repro.metrics import average_relative_error, top_k_recall
from repro.streams import ZipfWorkload


def main() -> None:
    domain = AddressDomain(2 ** 32)
    expected_pairs = 200_000       # U the operator expects
    alarm_frequency = 2_000        # f_vk: smallest frequency to resolve
    epsilon = 0.25                 # target relative error

    print(f"target workload: U={expected_pairs:,}, "
          f"f_vk={alarm_frequency:,}, epsilon={epsilon}")
    for flavor in ("theorem-4.4", "calibrated"):
        plan = plan_capacity(
            domain,
            distinct_pairs=expected_pairs,
            kth_frequency=alarm_frequency,
            epsilon=epsilon,
            flavor=flavor,
        )
        print(f"\n[{flavor}]")
        print(f"  shape: r={plan.params.r}, s={plan.params.s}")
        print(f"  predicted space: "
              f"{plan.predicted_space_bytes / 1e6:.2f} MB")
        print(f"  predicted rel. std-error at f_vk: "
              f"{plan.predicted_relative_error:.3f}")

    # ---- validate the calibrated plan on a live workload --------------
    plan = plan_capacity(domain, expected_pairs, alarm_frequency,
                         epsilon=epsilon, flavor="calibrated")
    workload = ZipfWorkload(domain, distinct_pairs=expected_pairs,
                            destinations=expected_pairs // 160,
                            skew=1.2, seed=5)
    sketch = TrackingDistinctCountSketch(plan.params, seed=6)
    print(f"\nvalidating on a live z=1.2 workload "
          f"({expected_pairs:,} updates)...")
    sketch.process_stream(workload)
    truth = workload.frequencies()
    result = sketch.track_topk(10)
    recall = top_k_recall(truth, result.destinations, 10)
    error = average_relative_error(truth, result.as_dict(), 10)
    print(f"  measured recall@10: {recall:.2f}")
    print(f"  measured avg relative error@10: {error:.3f} "
          f"(predicted {plan.predicted_relative_error:.3f})")
    assert error <= 3 * max(plan.predicted_relative_error, 0.05), \
        "measured error should be within a small factor of prediction"
    print("\nplan validated: the calibrated shape delivers the "
          "predicted accuracy at a fraction of the theorem's space.")


if __name__ == "__main__":
    main()
